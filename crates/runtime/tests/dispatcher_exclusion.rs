//! Regression test for full-ring re-picks (DESIGN.md "Batched dispatch
//! pipeline").
//!
//! The documented backpressure contract is that when a worker's ring is
//! full "the dispatcher re-picks among the *other* workers". Pre-fix the
//! retry re-ran the policy with no exclusion, so a deterministic policy
//! (Pinned, RssHash) kept choosing the same full ring and the dispatcher
//! spun — requests that any other worker could have served immediately
//! sat in the submit channel behind the blocked head.
//!
//! The scenario: two workers, worker 0 stalled by fault injection with a
//! capacity-2 ring, and a Pinned(0) policy steering every request at it.
//! Post-fix, the two requests that fit worker 0's ring wait out the
//! stall, and everything else overflows to worker 1 within microseconds.
//! Pre-fix, *nothing* completes until the stall window ends — the
//! deadline assertion below trips.

use std::time::{Duration, Instant};
use tq_audit::fault::FaultPlan;
use tq_core::policy::DispatchPolicy;
use tq_core::Nanos;
use tq_runtime::{ServerConfig, SpinJob, TinyQuanta, TscClock};

#[test]
fn full_ring_repick_excludes_the_full_worker() {
    let stall = Nanos::from_millis(4_000);
    let clock = TscClock::calibrated();
    let cfg = ServerConfig {
        workers: 2,
        quantum: Nanos::from_micros(5),
        ring_capacity: 2,
        dispatch: DispatchPolicy::Pinned(0),
        // Worker 0 is dark from the moment it starts: it admits nothing,
        // so its ring fills at two requests and stays full.
        fault: Some(FaultPlan::stall_worker(0, Nanos::ZERO, stall)),
        audit: true,
        seed: 7,
        ..ServerConfig::default()
    };
    let job_clock = clock.clone();
    let server = TinyQuanta::start_with_clock(cfg, clock.clone(), move |req| {
        Box::new(SpinJob::with_clock(req, &job_clock))
    });

    let n = 16usize;
    for i in 0..n {
        server.submit((i % 2) as u16, Nanos::from_micros(1));
    }

    // Worker 0's ring swallows at most two requests; the remaining 14
    // must overflow to worker 1 and complete long before the stall ends.
    // Pre-fix the dispatcher spins on worker 0's full ring instead and
    // zero completions arrive inside the deadline.
    let overflow = n - 2;
    let deadline = Instant::now() + Duration::from_millis(2_000);
    let mut completed = Vec::new();
    while completed.len() < overflow && Instant::now() < deadline {
        completed.extend(server.drain_completions());
        std::thread::yield_now();
    }
    assert!(
        completed.len() >= overflow,
        "only {}/{overflow} overflow requests completed before the \
         deadline: the dispatcher is not re-picking around the full ring",
        completed.len()
    );
    assert!(
        completed.iter().all(|c| c.worker == 1),
        "overflow requests must run on the non-stalled worker"
    );

    // Shutdown waits out the stall window; worker 0 then drains its two
    // ringed requests, and conservation must hold with a clean audit.
    let (rest, stats) = server.shutdown_with_stats();
    completed.extend(rest);
    assert_eq!(completed.len(), n, "every request completes eventually");
    assert!(
        stats.dispatcher.ring_full_retries > 0,
        "the scenario must actually have exercised backpressure"
    );
    let report = stats.audit.as_ref().expect("audit enabled");
    assert!(report.is_clean(), "{report}");
}
