//! Regression tests for the two-phase shutdown drain protocol.
//!
//! Pre-fix, shutdown had two holes (DESIGN.md "Shutdown and drain"):
//!
//! * In work-stealing mode a worker exited as soon as the drain flag was
//!   up and *its own* queue was empty — jobs still sitting in a sibling's
//!   queue (which that worker could have stolen) could be left behind if
//!   their owner was also past its exit check, breaking conservation.
//! * On the `Drop`-without-`shutdown` path the drain flag was raised
//!   *before* the dispatcher finished forwarding: workers could exit
//!   while the dispatcher kept pushing into their dead rings (silent job
//!   loss), and once such a ring filled up the dispatcher retried the
//!   push forever — a hang at join time.
//!
//! Post-fix: phase 1 (dispatcher sets `dispatcher_done` after its last
//! push, counting aborted requests as named drops) strictly precedes
//! phase 2 (workers exit only when every queue they can receive from is
//! empty). These tests hammer both paths; the stealing-conservation loop
//! runs well over 100 shutdowns under load, as tiny windows need many
//! trials to open.

use tq_core::policy::{DispatchPolicy, WorkerPolicy};
use tq_core::Nanos;
use tq_runtime::{ServerConfig, SpinJob, TinyQuanta, TscClock};

fn server(config: ServerConfig, clock: &TscClock) -> TinyQuanta {
    let job_clock = clock.clone();
    TinyQuanta::start_with_clock(config, clock.clone(), move |req| {
        Box::new(SpinJob::with_clock(req, &job_clock))
    })
}

/// ≥100 shutdowns of a loaded work-stealing server: every round must
/// conserve jobs exactly, with the auditor confirming ring-level
/// exactly-once admission (steals included). Fails on the pre-fix
/// local-queue-only exit check.
#[test]
fn stealing_shutdown_conserves_over_many_rounds() {
    let clock = TscClock::calibrated();
    let rounds = 120;
    let jobs_per_round = 64;
    for round in 0..rounds {
        let cfg = ServerConfig {
            workers: 4,
            quantum: Nanos::from_micros(2),
            // Tight rings force backpressure while the shutdown races the
            // dispatcher's final pushes.
            ring_capacity: 8,
            dispatch: DispatchPolicy::RssHash,
            discipline: WorkerPolicy::Fcfs,
            work_stealing: true,
            seed: round,
            audit: true,
            ..ServerConfig::default()
        };
        let s = server(cfg, &clock);
        for i in 0..jobs_per_round {
            s.submit((i % 2) as u16, Nanos::from_micros(1));
        }
        // Shut down immediately: most jobs are still in queues, so the
        // drain (and stealing during it) does the real work.
        let (completions, stats) = s.shutdown_with_stats();
        assert_eq!(
            completions.len(),
            jobs_per_round,
            "round {round}: lost {} job(s) at shutdown",
            jobs_per_round - completions.len()
        );
        let report = stats.audit.as_ref().expect("audit enabled");
        assert!(report.is_clean(), "round {round}: {report}");
    }
}

/// The same loop through the SPSC (non-stealing) path, cheaper per
/// round, as a control: the two-phase protocol must not regress it.
#[test]
fn spsc_shutdown_conserves_over_many_rounds() {
    let clock = TscClock::calibrated();
    for round in 0..100 {
        let cfg = ServerConfig {
            workers: 2,
            quantum: Nanos::from_micros(2),
            ring_capacity: 8,
            seed: round,
            audit: true,
            ..ServerConfig::default()
        };
        let s = server(cfg, &clock);
        for _ in 0..32 {
            s.submit(0, Nanos::from_micros(1));
        }
        let (completions, stats) = s.shutdown_with_stats();
        assert_eq!(completions.len(), 32, "round {round}");
        let report = stats.audit.as_ref().expect("audit enabled");
        assert!(report.is_clean(), "round {round}: {report}");
    }
}

/// Drop-without-shutdown under heavy load and tiny rings. Pre-fix this
/// hangs: workers exit on the early drain flag, the dispatcher keeps
/// forwarding into their dead rings, and the first full ring spins the
/// dispatcher (and the joining `Drop`) forever. Post-fix the dispatcher
/// accounts the backlog as `shutdown_abort` drops and every thread
/// terminates.
#[test]
fn drop_under_load_terminates() {
    let clock = TscClock::calibrated();
    for round in 0..20 {
        let cfg = ServerConfig {
            workers: 2,
            quantum: Nanos::from_micros(5),
            ring_capacity: 2,
            seed: round,
            ..ServerConfig::default()
        };
        let s = server(cfg, &clock);
        for _ in 0..400 {
            s.submit(0, Nanos::from_micros(50));
        }
        drop(s); // must terminate, not hang or lose track of threads
    }
}

/// Same abort path with stealing mode and tiny queues.
#[test]
fn drop_under_load_terminates_stealing() {
    let clock = TscClock::calibrated();
    for round in 0..20 {
        let cfg = ServerConfig {
            workers: 3,
            quantum: Nanos::from_micros(5),
            ring_capacity: 2,
            work_stealing: true,
            seed: round,
            ..ServerConfig::default()
        };
        let s = server(cfg, &clock);
        for _ in 0..300 {
            s.submit(0, Nanos::from_micros(50));
        }
        drop(s);
    }
}

/// A clean shutdown after a `submit` burst races phase 1 against phase 2
/// hundreds of times at varying burst sizes; conservation must hold at
/// every size (this sweeps the window where the dispatcher's last push
/// lands just as workers evaluate their exit condition).
#[test]
fn shutdown_while_submitting_burst_sizes() {
    let clock = TscClock::calibrated();
    for burst in [1usize, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
        for round in 0..10 {
            let cfg = ServerConfig {
                workers: 2,
                quantum: Nanos::from_micros(2),
                ring_capacity: 4,
                work_stealing: round % 2 == 1,
                seed: round,
                audit: true,
                ..ServerConfig::default()
            };
            let s = server(cfg, &clock);
            for _ in 0..burst {
                s.submit(0, Nanos::from_nanos(500));
            }
            let (completions, stats) = s.shutdown_with_stats();
            assert_eq!(completions.len(), burst, "burst {burst} round {round}");
            let report = stats.audit.as_ref().expect("audit enabled");
            assert!(report.is_clean(), "burst {burst} round {round}: {report}");
        }
    }
}
