//! Transport conformance suite.
//!
//! One shared harness run against every [`Transport`] implementation —
//! `per_datagram`, `batched`, and each io_uring tier the host's
//! capability probe validates — so future transports cannot silently
//! diverge on the contracts the serve loop leans on:
//!
//! * **exact-length frames**: a delivered frame's `len` equals the bytes
//!   the peer actually sent (no padding, no truncation below
//!   `MAX_FRAME`), and payload bytes survive the trip in order;
//! * **nonblocking empty recv**: `recv_batch` on an idle socket returns
//!   `Ok(0)` promptly — the caller owns all waiting;
//! * **stats agree with frames moved**: `recv_frames`/`send_frames`
//!   count exactly the frames the harness saw cross;
//! * **shutdown drain**: frames accepted by `send_batch` reach the wire
//!   even when the transport is dropped immediately afterwards.
//!
//! io_uring tiers that the probe reports unavailable are skipped
//! *loudly* (the skip and its reason are printed) rather than silently
//! passing.

use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};
use tq_runtime::transport::{Frame, Transport, UdpTransport, MAX_BATCH, MAX_FRAME};
use tq_runtime::uring::{self, IoUringTransport, UringConfig, UringMode};

/// A (transport, peer socket, transport address) triple for one run.
struct Pair {
    name: String,
    transport: Box<dyn Transport + Send>,
    peer: UdpSocket,
    addr: SocketAddr,
}

/// Builds every available transport, each with its own bound socket and
/// a peer socket to talk to it.
fn build_pairs() -> Vec<Pair> {
    let mut pairs = Vec::new();
    let caps = uring::probe();
    println!("conformance probe: {}", caps.summary());

    let fresh = || {
        let s = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let addr = s.local_addr().unwrap();
        (s, addr)
    };
    let peer = || {
        let s = UdpSocket::bind("127.0.0.1:0").expect("bind peer");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s
    };

    {
        let (s, addr) = fresh();
        pairs.push(Pair {
            name: "per_datagram".into(),
            transport: Box::new(UdpTransport::per_datagram(s).expect("per_datagram")),
            peer: peer(),
            addr,
        });
    }
    {
        let (s, addr) = fresh();
        pairs.push(Pair {
            name: "batched".into(),
            transport: Box::new(UdpTransport::batched(s).expect("batched")),
            peer: peer(),
            addr,
        });
    }
    if caps.available {
        let (s, addr) = fresh();
        pairs.push(Pair {
            name: "uring:recvmsg".into(),
            transport: Box::new(
                IoUringTransport::server_with(
                    s,
                    UringConfig {
                        mode: UringMode::Oneshot,
                        ..UringConfig::default()
                    },
                )
                .expect("probe said oneshot works"),
            ),
            peer: peer(),
            addr,
        });
        if caps.multishot {
            let (s, addr) = fresh();
            pairs.push(Pair {
                name: "uring:multishot".into(),
                transport: Box::new(
                    IoUringTransport::server_with(
                        s,
                        UringConfig {
                            mode: UringMode::Multishot,
                            ..UringConfig::default()
                        },
                    )
                    .expect("probe said multishot works"),
                ),
                peer: peer(),
                addr,
            });
        } else {
            println!("SKIP uring:multishot — probe: {}", caps.reason);
        }
    } else {
        println!("SKIP io_uring tiers — probe: {}", caps.reason);
    }
    pairs
}

/// Polls `recv_batch` until `want` frames arrive or the deadline passes.
fn recv_all(t: &mut dyn Transport, want: usize) -> Vec<Frame> {
    let mut got = Vec::new();
    let mut scratch = vec![Frame::empty(); MAX_BATCH];
    let deadline = Instant::now() + Duration::from_secs(10);
    while got.len() < want {
        let n = t.recv_batch(&mut scratch).expect("recv_batch");
        got.extend_from_slice(&scratch[..n]);
        if n == 0 {
            assert!(Instant::now() < deadline, "timed out at {}/{want}", got.len());
            std::thread::yield_now();
        }
    }
    got
}

#[test]
fn frames_arrive_with_exact_lengths_and_payloads() {
    for pair in build_pairs() {
        let Pair {
            name,
            mut transport,
            peer,
            addr,
        } = pair;
        // One datagram per length 1..=MAX_FRAME, payload = length marker
        // bytes, so both length and content corruption are detectable.
        for len in 1..=MAX_FRAME {
            let payload: Vec<u8> = (0..len).map(|i| (len ^ i) as u8).collect();
            peer.send_to(&payload, addr).expect("peer send");
        }
        let frames = recv_all(transport.as_mut(), MAX_FRAME);
        let mut seen = [false; MAX_FRAME + 1];
        for f in &frames {
            let len = f.len as usize;
            assert!(
                (1..=MAX_FRAME).contains(&len),
                "[{name}] frame length {len} was never sent"
            );
            assert!(!seen[len], "[{name}] length {len} delivered twice");
            seen[len] = true;
            let expect: Vec<u8> = (0..len).map(|i| (len ^ i) as u8).collect();
            assert_eq!(f.payload(), &expect[..], "[{name}] payload corrupted at len {len}");
            assert_eq!(
                f.addr,
                peer.local_addr().unwrap(),
                "[{name}] source address wrong"
            );
        }
        assert!(seen[1..].iter().all(|&s| s), "[{name}] a length went missing");
    }
}

#[test]
fn empty_recv_is_nonblocking_and_returns_zero() {
    for pair in build_pairs() {
        let Pair {
            name, mut transport, ..
        } = pair;
        let mut scratch = vec![Frame::empty(); MAX_BATCH];
        let start = Instant::now();
        for _ in 0..32 {
            let n = transport.recv_batch(&mut scratch).expect("recv_batch");
            assert_eq!(n, 0, "[{name}] frames out of nowhere");
        }
        // Generous bound: 32 idle polls must not take anywhere near a
        // blocking read's timeout. Catches an accidentally-blocking
        // socket, not scheduler jitter.
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "[{name}] recv_batch appears to block on an empty socket"
        );
    }
}

#[test]
fn stats_counters_agree_with_frames_moved() {
    const IN: usize = 96; // > MAX_BATCH so batching paths engage
    const OUT: usize = 80;
    for pair in build_pairs() {
        let Pair {
            name,
            mut transport,
            peer,
            addr,
        } = pair;
        let peer_addr = peer.local_addr().unwrap();
        for i in 0..IN {
            peer.send_to(&[i as u8; 8], addr).expect("peer send");
        }
        let frames = recv_all(transport.as_mut(), IN);
        assert_eq!(frames.len(), IN, "[{name}]");

        let out: Vec<Frame> = (0..OUT)
            .map(|i| Frame::new(&[i as u8; 24], peer_addr))
            .collect();
        transport.send_batch(&out).expect("send_batch");
        let mut buf = [0u8; MAX_FRAME];
        for _ in 0..OUT {
            peer.recv_from(&mut buf).expect("peer recv");
        }

        let stats = transport.stats();
        assert_eq!(
            stats.recv_frames, IN as u64,
            "[{name}] recv_frames disagrees with frames delivered"
        );
        assert_eq!(
            stats.send_frames, OUT as u64,
            "[{name}] send_frames disagrees with frames sent"
        );
        assert!(
            stats.recv_calls > 0 && stats.recv_calls <= stats.recv_frames,
            "[{name}] recv_calls {} out of range",
            stats.recv_calls
        );
        assert!(
            stats.send_calls > 0 && stats.send_calls <= stats.send_frames,
            "[{name}] send_calls {} out of range",
            stats.send_calls
        );
        assert!(
            stats.rcvbuf_bytes > 0 && stats.sndbuf_bytes > 0,
            "[{name}] achieved socket buffer sizes not surfaced"
        );
    }
}

#[test]
fn frames_accepted_by_send_batch_survive_immediate_drop() {
    const OUT: usize = 48;
    for pair in build_pairs() {
        let Pair {
            name,
            mut transport,
            peer,
            addr: _,
        } = pair;
        let peer_addr = peer.local_addr().unwrap();
        let out: Vec<Frame> = (0..OUT)
            .map(|i| Frame::new(&[i as u8; 16], peer_addr))
            .collect();
        transport.send_batch(&out).expect("send_batch");
        drop(transport); // drain-on-drop must flush in-flight sends
        let mut buf = [0u8; MAX_FRAME];
        let mut got = 0usize;
        while got < OUT {
            match peer.recv_from(&mut buf) {
                Ok((len, _)) => {
                    assert_eq!(len, 16, "[{name}] truncated frame after drop");
                    got += 1;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    panic!("[{name}] only {got}/{OUT} frames survived the drop")
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("[{name}] peer recv: {e}"),
            }
        }
    }
}
