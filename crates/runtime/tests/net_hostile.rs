//! Hostile wire-input tests for the batched socket front end.
//!
//! The serve loop's contract (see `net.rs` module docs) is that the
//! *ledger* survives anything a UDP peer can do: duplicate tags,
//! interleaved clients, clients that stop reading, floods past the
//! in-flight bound, and a stop request while jobs are mid-service. None
//! of these may lose a datagram unaccounted — `received == responded +
//! malformed + shed` always — and shutdown must drain every admitted
//! job over the socket rather than wedging or dropping it.
//!
//! Every test runs a real `TinyQuanta` server on loopback with the
//! invariant auditor on, once per available wire — the batched
//! `recvmmsg`/`sendmmsg` transport always, and the io_uring transport
//! wherever the capability probe validates it (skipped loudly, with the
//! probe's reason, elsewhere). Timing assertions are avoided (CI hosts
//! are shared); the assertions are all counting and conservation.

use std::collections::HashSet;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tq_core::Nanos;
use tq_runtime::net::{decode_response, encode_request, serve, NetConfig, ServeOutcome};
use tq_runtime::transport::{set_socket_buffers, Transport, UdpTransport};
use tq_runtime::uring::{self, IoUringTransport};
use tq_runtime::{ServerConfig, SpinJob, TinyQuanta, TscClock};

/// Which transport carries a scenario's wire traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wire {
    Batched,
    Uring,
}

/// The wires this host can run; io_uring's absence is loud, never a
/// silent pass.
fn wires() -> Vec<Wire> {
    let caps = uring::probe();
    if caps.available {
        vec![Wire::Batched, Wire::Uring]
    } else {
        println!("SKIP io_uring wire — probe: {}", caps.reason);
        vec![Wire::Batched]
    }
}

struct Served {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: JoinHandle<std::io::Result<ServeOutcome>>,
}

impl Served {
    /// Spawns an audited spin-job server behind the given wire's
    /// transport.
    fn start(workers: usize, net_config: NetConfig, wire: Wire) -> Served {
        let clock = TscClock::calibrated();
        let job_clock = clock.clone();
        let server = TinyQuanta::start_with_clock(
            ServerConfig {
                workers,
                quantum: Nanos::from_micros(10),
                audit: true,
                ..ServerConfig::default()
            },
            clock,
            move |req| Box::new(SpinJob::with_clock(req, &job_clock)),
        );
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind server");
        set_socket_buffers(&socket, 1 << 20).expect("socket buffers");
        let addr = socket.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut transport: Box<dyn Transport + Send> = match wire {
                Wire::Batched => Box::new(UdpTransport::batched(socket).expect("transport")),
                Wire::Uring => Box::new(IoUringTransport::server(socket).expect("uring")),
            };
            serve(server, &mut transport, &stop2, &net_config)
        });
        Served { addr, stop, handle }
    }

    /// Stops the loop and returns the audited outcome; asserts both the
    /// net ledger and the server's internal report are clean.
    fn finish(self) -> ServeOutcome {
        self.stop.store(true, Ordering::Release);
        let outcome = self
            .handle
            .join()
            .expect("serve thread")
            .expect("serve result");
        let net_report = outcome.net.audit();
        assert!(net_report.is_clean(), "net audit: {net_report}");
        let server_report = outcome.server.audit.as_ref().expect("audit enabled");
        assert!(server_report.is_clean(), "server audit: {server_report}");
        outcome
    }
}

fn client() -> UdpSocket {
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    sock
}

fn recv_response(sock: &UdpSocket) -> Option<(u64, Nanos, u64)> {
    let mut buf = [0u8; 64];
    loop {
        match sock.recv_from(&mut buf) {
            Ok((len, _)) => {
                return Some(decode_response(&buf[..len]).expect("server sent a malformed response"))
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return None
            }
            // EINTR under a loaded test host is weather, not a verdict.
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("client recv: {e}"),
        }
    }
}

/// The tag is the client's correlation token, not a key: a peer that
/// reuses one gets every request it paid for answered (two requests,
/// two responses, same tag), because in-flight state is keyed by the
/// server-assigned `JobId`, never by wire input.
#[test]
fn duplicate_tags_are_both_answered() {
    wires().into_iter().for_each(duplicate_tags_scenario);
}

fn duplicate_tags_scenario(wire: Wire) {
    let served = Served::start(1, NetConfig::default(), wire);
    let sock = client();
    for _ in 0..2 {
        sock.send_to(&encode_request(0, Nanos::from_micros(1), 42), served.addr)
            .unwrap();
    }
    for i in 0..2 {
        let (tag, _, _) = recv_response(&sock).unwrap_or_else(|| panic!("response {i} timed out"));
        assert_eq!(tag, 42);
    }
    let outcome = served.finish();
    assert_eq!(outcome.net.received, 2);
    assert_eq!(outcome.net.responded, 2);
}

/// Two clients with overlapping tag spaces interleave requests; each
/// must get exactly its own responses back (addressing is by source
/// socket, so even identical tags from different peers cannot cross).
#[test]
fn interleaved_clients_receive_only_their_own_responses() {
    wires().into_iter().for_each(interleaved_clients_scenario);
}

fn interleaved_clients_scenario(wire: Wire) {
    const PER_CLIENT: u64 = 32;
    let served = Served::start(2, NetConfig::default(), wire);
    let a = client();
    let b = client();
    for tag in 0..PER_CLIENT {
        // Same tag values from both peers, interleaved on the wire.
        a.send_to(&encode_request(0, Nanos::from_micros(1), tag), served.addr)
            .unwrap();
        b.send_to(&encode_request(1, Nanos::from_micros(1), tag), served.addr)
            .unwrap();
    }
    for sock in [&a, &b] {
        let mut seen = HashSet::new();
        for _ in 0..PER_CLIENT {
            let (tag, _, _) = recv_response(sock).expect("response timed out");
            assert!(tag < PER_CLIENT, "tag {tag} was never sent by this client");
            assert!(seen.insert(tag), "tag {tag} answered twice to one client");
        }
    }
    let outcome = served.finish();
    assert_eq!(outcome.net.received, 2 * PER_CLIENT);
    assert_eq!(outcome.net.responded, 2 * PER_CLIENT);
}

/// A client that stops reading its socket must not corrupt the server's
/// ledger: the server answers (or sheds) everything it received and the
/// conservation identity holds regardless of what the peer does with
/// the responses.
#[test]
fn lossy_client_leaves_the_server_ledger_conserved() {
    wires().into_iter().for_each(lossy_client_scenario);
}

fn lossy_client_scenario(wire: Wire) {
    const SENT: u64 = 64;
    const READ: u64 = 16;
    let served = Served::start(1, NetConfig::default(), wire);
    let sock = client();
    for tag in 0..SENT {
        sock.send_to(&encode_request(0, Nanos::ZERO, tag), served.addr)
            .unwrap();
    }
    // Read a prefix, then abandon the rest in the socket buffer.
    for _ in 0..READ {
        recv_response(&sock).expect("response timed out");
    }
    let outcome = served.finish();
    // `finish` audits conservation (received == responded + shed +
    // malformed); on top of that the server must have answered at least
    // what the client actually saw, and nothing was malformed.
    assert!(outcome.net.responded >= READ);
    assert_eq!(outcome.net.malformed, 0);
    assert_eq!(outcome.net.received, outcome.net.responded + outcome.net.shed);
}

/// Stop raised while jobs are mid-service: every admitted request must
/// still be answered over the socket before the loop exits (the drain
/// contract), and the join must not wedge.
#[test]
fn shutdown_while_requests_in_flight_drains_over_the_socket() {
    wires().into_iter().for_each(shutdown_in_flight_scenario);
}

fn shutdown_in_flight_scenario(wire: Wire) {
    const SENT: u64 = 4;
    let served = Served::start(1, NetConfig::default(), wire);
    let sock = client();
    // 50 ms of spinning each on one worker: the first response proves
    // admission; the rest are guaranteed still in flight behind it.
    for tag in 0..SENT {
        sock.send_to(
            &encode_request(0, Nanos::from_millis(50), tag),
            served.addr,
        )
        .unwrap();
    }
    let mut got = 1u64;
    recv_response(&sock).expect("first response timed out");
    served.stop.store(true, Ordering::Release);
    // Keep reading: the drain must deliver every admitted job's
    // response even though stop is already up.
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    while got < SENT {
        match recv_response(&sock) {
            Some(_) => got += 1,
            None => break, // timeout: compare against the ledger below
        }
    }
    let outcome = served.finish();
    assert_eq!(
        got, outcome.net.responded,
        "client saw {got} responses but the server claims {}",
        outcome.net.responded
    );
    assert_eq!(outcome.net.responded + outcome.net.shed, SENT);
    assert!(
        outcome.net.responded >= 1,
        "at least the observed first response was admitted"
    );
}

/// Flooding past the in-flight bound sheds the excess — counted, not
/// lost: the ledger still balances and the auditor stays clean.
#[test]
fn overload_sheds_past_the_in_flight_bound() {
    wires().into_iter().for_each(overload_shed_scenario);
}

fn overload_shed_scenario(wire: Wire) {
    const SENT: u64 = 32;
    let served = Served::start(
        1,
        NetConfig {
            max_in_flight: 4,
            ..NetConfig::default()
        },
        wire,
    );
    let sock = client();
    // Long jobs so no slot frees while the flood is being admitted.
    for tag in 0..SENT {
        sock.send_to(
            &encode_request(0, Nanos::from_millis(20), tag),
            served.addr,
        )
        .unwrap();
    }
    // Read until the server goes quiet: everything admitted, answered.
    sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut got = 0u64;
    while recv_response(&sock).is_some() {
        got += 1;
    }
    let outcome = served.finish();
    assert_eq!(got, outcome.net.responded);
    assert_eq!(outcome.net.received, SENT);
    assert!(
        outcome.net.shed > 0,
        "a 32-deep flood against a bound of 4 must shed"
    );
    assert_eq!(outcome.net.responded + outcome.net.shed, SENT);
    assert!(outcome.net.max_in_flight <= 4, "bound was exceeded");
}
