//! Exhaustive interleaving check of the SPSC ring's index protocol.
//!
//! The vendored dependency set has no `loom`/`shuttle`, so this is a
//! hand-rolled model checker in the same spirit: the producer's `push`
//! and the consumer's `pop` (crates/runtime/src/ring.rs) are broken into
//! their atomic steps, and a memoized DFS explores *every* reachable
//! interleaving of the two threads — including stale acquire-loads: an
//! observer may read any historical value of the other side's index no
//! older than what it last saw (per-location coherence), which is
//! exactly the freedom the Acquire/Release pairs leave on real hardware.
//!
//! Checked in every reachable state:
//! * no slot is overwritten while it still holds an unconsumed item
//!   (the unsafe `write` would otherwise clobber or double-drop),
//! * no uninitialized slot is read (`assume_init_read` on garbage),
//! * items arrive in FIFO order, each exactly once,
//! * a terminal state (all items transferred) is actually reachable.
//!
//! Should the protocol in ring.rs change shape (orderings, index
//! arithmetic), this model must be updated with it — see the step tables
//! in `producer_step`/`consumer_step`, which mirror the source line by
//! line.

use std::collections::HashSet;

const VALUES_DONE: u64 = u64::MAX;

/// One explored machine state: both threads' program counters and
/// registers plus the shared memory. `Hash`/`Eq` give DFS memoization,
/// which is what makes the retry loops (full/empty → start over)
/// explorable without a step bound.
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    // Shared memory.
    tail: usize,
    head: usize,
    /// `Some(v)` = produced, unconsumed; `None` = uninitialized or
    /// already consumed. Indexed by slot (i.e. position % cap).
    slots: Vec<Option<u64>>,
    // Producer thread: pc, next value to push, index registers, and the
    // newest head value it has ever observed (coherence floor).
    p_pc: u8,
    p_next: u64,
    p_tail_reg: usize,
    p_head_reg: usize,
    p_seen_head: usize,
    // Consumer thread: pc, index registers, newest tail observed, and
    // how many items it has consumed (FIFO expectation).
    c_pc: u8,
    c_head_reg: usize,
    c_tail_reg: usize,
    c_seen_tail: usize,
    c_got: u64,
}

struct Model {
    cap: usize,
    n_items: u64,
}

impl Model {
    fn initial(&self) -> State {
        State {
            tail: 0,
            head: 0,
            slots: vec![None; self.cap],
            p_pc: 0,
            p_next: 0,
            p_tail_reg: 0,
            p_head_reg: 0,
            p_seen_head: 0,
            c_pc: 0,
            c_head_reg: 0,
            c_tail_reg: 0,
            c_seen_tail: 0,
            c_got: 0,
        }
    }

    fn done(&self, s: &State) -> bool {
        s.p_next == VALUES_DONE && s.c_got == self.n_items
    }

    /// Successor states for one producer step. Mirrors `Producer::push`:
    ///   pc0: tail.load(Relaxed)      — own writes, always current
    ///   pc1: head.load(Acquire)      — may be stale (≥ last observed)
    ///   pc2: full check; write slot
    ///   pc3: tail.store(+1, Release)
    fn producer_step(&self, s: &State) -> Vec<State> {
        let mut out = Vec::new();
        match s.p_pc {
            0 => {
                let mut n = s.clone();
                if s.p_next == self.n_items {
                    n.p_next = VALUES_DONE; // no more pushes: thread exits
                } else {
                    n.p_tail_reg = s.tail;
                    n.p_pc = 1;
                }
                out.push(n);
            }
            1 => {
                // The acquire load may return any value of `head` between
                // what this thread last saw and the current one.
                for h in s.p_seen_head..=s.head {
                    let mut n = s.clone();
                    n.p_head_reg = h;
                    n.p_seen_head = h;
                    n.p_pc = 2;
                    out.push(n);
                }
            }
            2 => {
                let mut n = s.clone();
                if s.p_tail_reg - s.p_head_reg == self.cap {
                    n.p_pc = 0; // full: backpressure, retry
                } else {
                    let slot = s.p_tail_reg % self.cap;
                    assert!(
                        s.slots[slot].is_none(),
                        "producer overwrote an unconsumed slot {slot} \
                         (tail {} head-reg {} real head {})",
                        s.p_tail_reg,
                        s.p_head_reg,
                        s.head
                    );
                    n.slots[slot] = Some(s.p_next);
                    n.p_pc = 3;
                }
                out.push(n);
            }
            3 => {
                let mut n = s.clone();
                n.tail = s.p_tail_reg + 1;
                n.p_next = s.p_next + 1;
                n.p_pc = 0;
                out.push(n);
            }
            _ => unreachable!(),
        }
        out
    }

    /// Successor states for one consumer step. Mirrors `Consumer::pop`:
    ///   pc0: head.load(Relaxed)      — own writes, always current
    ///   pc1: tail.load(Acquire)      — may be stale (≥ last observed)
    ///   pc2: empty check; read slot
    ///   pc3: head.store(+1, Release)
    fn consumer_step(&self, s: &State) -> Vec<State> {
        let mut out = Vec::new();
        if s.c_got == self.n_items {
            return out; // thread exited
        }
        match s.c_pc {
            0 => {
                let mut n = s.clone();
                n.c_head_reg = s.head;
                n.c_pc = 1;
                out.push(n);
            }
            1 => {
                for t in s.c_seen_tail..=s.tail {
                    let mut n = s.clone();
                    n.c_tail_reg = t;
                    n.c_seen_tail = t;
                    n.c_pc = 2;
                    out.push(n);
                }
            }
            2 => {
                let mut n = s.clone();
                if s.c_head_reg == s.c_tail_reg {
                    n.c_pc = 0; // observed empty: retry
                } else {
                    let slot = s.c_head_reg % self.cap;
                    let v = s.slots[slot].unwrap_or_else(|| {
                        panic!(
                            "consumer read uninitialized slot {slot} \
                             (head {} tail-reg {} real tail {})",
                            s.c_head_reg, s.c_tail_reg, s.tail
                        )
                    });
                    assert_eq!(
                        v, s.c_got,
                        "FIFO violated: consumed {} expecting {}",
                        v, s.c_got
                    );
                    n.slots[slot] = None;
                    n.c_got = s.c_got + 1;
                    n.c_pc = 3;
                }
                out.push(n);
            }
            3 => {
                let mut n = s.clone();
                n.head = s.c_head_reg + 1;
                n.c_pc = 0;
                out.push(n);
            }
            _ => unreachable!(),
        }
        out
    }

    /// Explores every reachable interleaving; returns (states visited,
    /// whether a fully-transferred terminal state was reached). Panics on
    /// the first invariant violation (inside the step functions).
    fn explore(&self) -> (usize, bool) {
        let mut seen: HashSet<State> = HashSet::new();
        let mut stack = vec![self.initial()];
        let mut completed = false;
        while let Some(s) = stack.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            if self.done(&s) {
                completed = true;
                continue;
            }
            let mut succs = Vec::new();
            if s.p_next != VALUES_DONE {
                succs.extend(self.producer_step(&s));
            }
            succs.extend(self.consumer_step(&s));
            assert!(
                !succs.is_empty() || self.done(&s),
                "deadlock: neither thread can step and the transfer is incomplete"
            );
            stack.extend(succs);
        }
        (seen.len(), completed)
    }
}

#[test]
fn spsc_protocol_safe_under_all_interleavings_cap2() {
    let m = Model { cap: 2, n_items: 4 };
    let (states, completed) = m.explore();
    assert!(completed, "no interleaving completed the transfer");
    // Sanity that the exploration is genuinely combinatorial, not a
    // single path (memoization makes the distinct-state count compact).
    assert!(states > 300, "only {states} states explored");
}

#[test]
fn spsc_protocol_safe_under_all_interleavings_cap1() {
    // Capacity 1 — the `ring_capacity_one` fault scenario's primitive:
    // every push/pop pair contends on the same slot, maximizing the
    // window for overwrite/uninit-read bugs.
    let m = Model { cap: 1, n_items: 3 };
    let (states, completed) = m.explore();
    assert!(completed, "no interleaving completed the transfer");
    assert!(states > 100, "only {states} states explored");
}

#[test]
fn spsc_protocol_safe_under_all_interleavings_cap3() {
    let m = Model { cap: 3, n_items: 5 };
    let (states, completed) = m.explore();
    assert!(completed, "no interleaving completed the transfer");
    assert!(states > 300, "only {states} states explored");
}

/// The model must actually be able to catch bugs: re-run the cap-2
/// exploration with the producer's full check knocked out (`> cap`
/// instead of `== cap` would be wrong the other way; here we simulate
/// the classic off-by-one `cap + 1`) and assert the checker trips.
#[test]
fn model_detects_a_seeded_capacity_bug() {
    struct Buggy(Model);
    impl Buggy {
        fn explore(&self) -> Result<(), String> {
            let m = &self.0;
            let mut seen: HashSet<State> = HashSet::new();
            let mut stack = vec![m.initial()];
            while let Some(s) = stack.pop() {
                if !seen.insert(s.clone()) {
                    continue;
                }
                if m.done(&s) {
                    continue;
                }
                // Producer with the seeded bug: admits cap+1 in flight.
                if s.p_next != VALUES_DONE && s.p_pc == 2 {
                    if s.p_tail_reg - s.p_head_reg == m.cap + 1 {
                        let mut n = s.clone();
                        n.p_pc = 0;
                        stack.push(n);
                    } else {
                        let slot = s.p_tail_reg % m.cap;
                        if s.slots[slot].is_some() {
                            return Err(format!("overwrite of live slot {slot}"));
                        }
                        let mut n = s.clone();
                        n.slots[slot] = Some(s.p_next);
                        n.p_pc = 3;
                        stack.push(n);
                    }
                } else if s.p_next != VALUES_DONE {
                    stack.extend(m.producer_step(&s));
                }
                stack.extend(m.consumer_step(&s));
            }
            Ok(())
        }
    }
    let buggy = Buggy(Model { cap: 2, n_items: 4 });
    assert!(
        buggy.explore().is_err(),
        "the checker failed to catch a seeded off-by-one capacity bug"
    );
}
