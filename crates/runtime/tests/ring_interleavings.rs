//! Exhaustive interleaving check of the SPSC ring's index protocol.
//!
//! The vendored dependency set has no `loom`/`shuttle`, so this is a
//! hand-rolled model checker in the same spirit: the producer's
//! `push`/`push_batch` and the consumer's `pop`/`pop_batch`
//! (crates/runtime/src/ring.rs) are broken into their atomic steps, and
//! a memoized DFS explores *every* reachable interleaving of the two
//! threads — including stale acquire-loads: an observer may read any
//! historical value of the other side's index no older than what it last
//! saw (per-location coherence), which is exactly the freedom the
//! Acquire/Release pairs leave on real hardware.
//!
//! The model covers the cached-position protocol: each side keeps a
//! persistent cache of the other side's index (`p_cached_head`,
//! `c_cached_tail`) that survives across operations and is refreshed —
//! with a possibly-stale Acquire load — only when it reports too little
//! slack. Batch size is nondeterministic from 1 to `batch_max`, so a
//! `batch_max = 1` run is exactly the single-op `push`/`pop` protocol
//! and larger runs cover every mix of single and batched calls.
//!
//! The k slot writes (reads) of a batch are modeled as one step. That is
//! sound for the checked invariants: the consumer only *clears* slots,
//! so a slot live at any point during a real write burst was live at the
//! burst's start, and the DFS schedules the coarse step at that earliest
//! placement too (symmetrically, slots only *gain* initialization during
//! a read burst).
//!
//! Checked in every reachable state:
//! * no slot is overwritten while it still holds an unconsumed item
//!   (the unsafe `write` would otherwise clobber or double-drop),
//! * no uninitialized slot is read (`assume_init_read` on garbage),
//! * items arrive in FIFO order, each exactly once,
//! * a terminal state (all items transferred) is actually reachable.
//!
//! Should the protocol in ring.rs change shape (orderings, index
//! arithmetic, cache-refresh conditions), this model must be updated
//! with it — see the step tables in `producer_step`/`consumer_step`,
//! which mirror the source line by line.

use std::collections::HashSet;

const VALUES_DONE: u64 = u64::MAX;

/// One explored machine state: both threads' program counters and
/// registers plus the shared memory. `Hash`/`Eq` give DFS memoization,
/// which is what makes the retry loops (full/empty → start over)
/// explorable without a step bound.
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    // Shared memory.
    tail: usize,
    head: usize,
    /// `Some(v)` = produced, unconsumed; `None` = uninitialized or
    /// already consumed. Indexed by slot (i.e. position % cap).
    slots: Vec<Option<u64>>,
    // Producer thread: pc, next value to push, the tail register, the
    // persistent cached head (doubles as the coherence floor: a refresh
    // can never observe an older value), and the chosen batch size
    // between write and publish.
    p_pc: u8,
    p_next: u64,
    p_tail_reg: usize,
    p_cached_head: usize,
    p_k: usize,
    // Consumer thread: pc, head register, persistent cached tail
    // (coherence floor), chosen batch size, and how many items it has
    // consumed (FIFO expectation).
    c_pc: u8,
    c_head_reg: usize,
    c_cached_tail: usize,
    c_k: usize,
    c_got: u64,
}

struct Model {
    cap: usize,
    n_items: u64,
    /// Largest batch either side may attempt. 1 = the single-op
    /// protocol; >1 covers `push_batch`/`pop_batch` mixed with singles
    /// (the nondeterministic k includes 1).
    batch_max: usize,
}

impl Model {
    fn initial(&self) -> State {
        State {
            tail: 0,
            head: 0,
            slots: vec![None; self.cap],
            p_pc: 0,
            p_next: 0,
            p_tail_reg: 0,
            p_cached_head: 0,
            p_k: 0,
            c_pc: 0,
            c_head_reg: 0,
            c_cached_tail: 0,
            c_k: 0,
            c_got: 0,
        }
    }

    fn done(&self, s: &State) -> bool {
        s.p_next == VALUES_DONE && s.c_got == self.n_items
    }

    /// Successor states for one producer step. Mirrors
    /// `Producer::push_batch` (and `push`, the `want = 1` case):
    ///   pc0: tail.load(Relaxed)          — own writes, always current
    ///   pc1: free via cached head; if free < want, refresh the cache
    ///        with head.load(Acquire)     — may be stale (≥ cache)
    ///   pc2: full check; choose k ≤ min(free, want); write k slots
    ///   pc3: tail.store(+k, Release)     — single publish per burst
    fn producer_step(&self, s: &State) -> Vec<State> {
        let mut out = Vec::new();
        let want = (self.batch_max as u64).min(match s.p_next {
            VALUES_DONE => 0,
            next => self.n_items - next,
        }) as usize;
        match s.p_pc {
            0 => {
                let mut n = s.clone();
                if s.p_next == self.n_items {
                    n.p_next = VALUES_DONE; // no more pushes: thread exits
                } else {
                    n.p_tail_reg = s.tail;
                    n.p_pc = 1;
                }
                out.push(n);
            }
            1 => {
                let free = self.cap - (s.p_tail_reg - s.p_cached_head);
                if free >= want {
                    // Cache has enough slack: no cross-core load at all.
                    let mut n = s.clone();
                    n.p_pc = 2;
                    out.push(n);
                } else {
                    // The acquire refresh may return any value of `head`
                    // between the cache (newest value ever observed) and
                    // the current one.
                    for h in s.p_cached_head..=s.head {
                        let mut n = s.clone();
                        n.p_cached_head = h;
                        n.p_pc = 2;
                        out.push(n);
                    }
                }
            }
            2 => {
                let free = self.cap - (s.p_tail_reg - s.p_cached_head);
                if free == 0 {
                    let mut n = s.clone();
                    n.p_pc = 0; // full: backpressure, caller retries
                    out.push(n);
                } else {
                    // The real code pushes exactly min(free, want);
                    // allowing any smaller k over-approximates and also
                    // covers single pushes interleaved with batches.
                    for k in 1..=free.min(want) {
                        let mut n = s.clone();
                        for i in 0..k {
                            let slot = (s.p_tail_reg + i) % self.cap;
                            assert!(
                                n.slots[slot].is_none(),
                                "producer overwrote an unconsumed slot {slot} \
                                 (tail {} cached head {} real head {} k {k})",
                                s.p_tail_reg,
                                s.p_cached_head,
                                s.head
                            );
                            n.slots[slot] = Some(s.p_next + i as u64);
                        }
                        n.p_k = k;
                        n.p_pc = 3;
                        out.push(n);
                    }
                }
            }
            3 => {
                let mut n = s.clone();
                n.tail = s.p_tail_reg + s.p_k;
                n.p_next = s.p_next + s.p_k as u64;
                n.p_k = 0;
                n.p_pc = 0;
                out.push(n);
            }
            _ => unreachable!(),
        }
        out
    }

    /// Successor states for one consumer step. Mirrors
    /// `Consumer::pop_batch` (and `pop`, the `max = 1` case):
    ///   pc0: head.load(Relaxed)          — own writes, always current
    ///   pc1: avail via cached tail; if 0, refresh the cache with
    ///        tail.load(Acquire)          — may be stale (≥ cache)
    ///   pc2: empty check; choose k ≤ avail; read k slots
    ///   pc3: head.store(+k, Release)     — single recycle per burst
    fn consumer_step(&self, s: &State) -> Vec<State> {
        let mut out = Vec::new();
        if s.c_got == self.n_items {
            return out; // thread exited
        }
        match s.c_pc {
            0 => {
                let mut n = s.clone();
                n.c_head_reg = s.head;
                n.c_pc = 1;
                out.push(n);
            }
            1 => {
                let avail = s.c_cached_tail - s.c_head_reg;
                if avail > 0 {
                    // Cache still shows items: no cross-core load.
                    let mut n = s.clone();
                    n.c_pc = 2;
                    out.push(n);
                } else {
                    for t in s.c_cached_tail..=s.tail {
                        let mut n = s.clone();
                        n.c_cached_tail = t;
                        n.c_pc = 2;
                        out.push(n);
                    }
                }
            }
            2 => {
                let avail = s.c_cached_tail - s.c_head_reg;
                if avail == 0 {
                    let mut n = s.clone();
                    n.c_pc = 0; // observed empty: retry
                    out.push(n);
                } else {
                    for k in 1..=avail.min(self.batch_max) {
                        let mut n = s.clone();
                        for i in 0..k {
                            let slot = (s.c_head_reg + i) % self.cap;
                            let v = s.slots[slot].unwrap_or_else(|| {
                                panic!(
                                    "consumer read uninitialized slot {slot} \
                                     (head {} cached tail {} real tail {} k {k})",
                                    s.c_head_reg, s.c_cached_tail, s.tail
                                )
                            });
                            assert_eq!(
                                v,
                                s.c_got + i as u64,
                                "FIFO violated: consumed {} expecting {}",
                                v,
                                s.c_got + i as u64
                            );
                            n.slots[slot] = None;
                        }
                        n.c_k = k;
                        n.c_got = s.c_got + k as u64;
                        n.c_pc = 3;
                        out.push(n);
                    }
                }
            }
            3 => {
                let mut n = s.clone();
                n.head = s.c_head_reg + s.c_k;
                n.c_k = 0;
                n.c_pc = 0;
                out.push(n);
            }
            _ => unreachable!(),
        }
        out
    }

    /// Explores every reachable interleaving; returns (states visited,
    /// whether a fully-transferred terminal state was reached). Panics on
    /// the first invariant violation (inside the step functions).
    fn explore(&self) -> (usize, bool) {
        let mut seen: HashSet<State> = HashSet::new();
        let mut stack = vec![self.initial()];
        let mut completed = false;
        while let Some(s) = stack.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            if self.done(&s) {
                completed = true;
                continue;
            }
            let mut succs = Vec::new();
            if s.p_next != VALUES_DONE {
                succs.extend(self.producer_step(&s));
            }
            succs.extend(self.consumer_step(&s));
            assert!(
                !succs.is_empty() || self.done(&s),
                "deadlock: neither thread can step and the transfer is incomplete"
            );
            stack.extend(succs);
        }
        (seen.len(), completed)
    }
}

#[test]
fn spsc_protocol_safe_under_all_interleavings_cap2_single() {
    // batch_max = 1: exactly the single-op push/pop protocol with the
    // cached positions, the shape the old (uncached) model covered.
    let m = Model { cap: 2, n_items: 4, batch_max: 1 };
    let (states, completed) = m.explore();
    assert!(completed, "no interleaving completed the transfer");
    // Sanity that the exploration is genuinely combinatorial, not a
    // single path (memoization makes the distinct-state count compact).
    assert!(states > 300, "only {states} states explored");
}

#[test]
fn spsc_protocol_safe_under_all_interleavings_cap1() {
    // Capacity 1 — the `ring_capacity_one` fault scenario's primitive:
    // every push/pop pair contends on the same slot, maximizing the
    // window for overwrite/uninit-read bugs. Batches degenerate to 1.
    let m = Model { cap: 1, n_items: 3, batch_max: 2 };
    let (states, completed) = m.explore();
    assert!(completed, "no interleaving completed the transfer");
    assert!(states > 100, "only {states} states explored");
}

#[test]
fn spsc_protocol_safe_under_all_interleavings_cap2_batched() {
    let m = Model { cap: 2, n_items: 4, batch_max: 2 };
    let (states, completed) = m.explore();
    assert!(completed, "no interleaving completed the transfer");
    assert!(states > 300, "only {states} states explored");
}

#[test]
fn spsc_protocol_safe_under_all_interleavings_cap3_batched() {
    // Batches can span the wrap point (cap 3, bursts of up to 3).
    let m = Model { cap: 3, n_items: 6, batch_max: 3 };
    let (states, completed) = m.explore();
    assert!(completed, "no interleaving completed the transfer");
    assert!(states > 1000, "only {states} states explored");
}

#[test]
fn spsc_protocol_safe_under_all_interleavings_cap4_mixed() {
    // batch_max < cap: bursts and singles mix while slack remains, so
    // the no-refresh fast path (cache has room) is actually exercised
    // across consecutive bursts.
    let m = Model { cap: 4, n_items: 6, batch_max: 2 };
    let (states, completed) = m.explore();
    assert!(completed, "no interleaving completed the transfer");
    assert!(states > 1000, "only {states} states explored");
}

/// The model must actually be able to catch bugs: re-run the cap-2
/// exploration with the producer's free-slot arithmetic off by one (it
/// believes `cap + 1` slots exist), and assert the checker trips with an
/// overwrite. This guards the model itself against rotting into a
/// tautology.
#[test]
fn model_detects_a_seeded_capacity_bug() {
    struct Buggy(Model);
    impl Buggy {
        fn explore(&self) -> Result<(), String> {
            let m = &self.0;
            let mut seen: HashSet<State> = HashSet::new();
            let mut stack = vec![m.initial()];
            while let Some(s) = stack.pop() {
                if !seen.insert(s.clone()) {
                    continue;
                }
                if m.done(&s) {
                    continue;
                }
                // Producer with the seeded bug: free-slot arithmetic
                // believes `cap + 1` slots exist (classic off-by-one in
                // the full check). Both pc1 (refresh condition) and pc2
                // (full check + write) are overridden so the corrupted
                // states never reach the sound model's arithmetic.
                let buggy_free = |s: &State| (m.cap + 1) - (s.p_tail_reg - s.p_cached_head);
                if s.p_next != VALUES_DONE && s.p_pc == 1 {
                    let want = (m.batch_max as u64).min(m.n_items - s.p_next) as usize;
                    if buggy_free(&s) >= want {
                        let mut n = s.clone();
                        n.p_pc = 2;
                        stack.push(n);
                    } else {
                        for h in s.p_cached_head..=s.head {
                            let mut n = s.clone();
                            n.p_cached_head = h;
                            n.p_pc = 2;
                            stack.push(n);
                        }
                    }
                } else if s.p_next != VALUES_DONE && s.p_pc == 2 {
                    let free = buggy_free(&s);
                    if free == 0 {
                        let mut n = s.clone();
                        n.p_pc = 0;
                        stack.push(n);
                    } else {
                        let want = (m.batch_max as u64).min(m.n_items - s.p_next) as usize;
                        for k in 1..=free.min(want.max(1)) {
                            let mut n = s.clone();
                            for i in 0..k {
                                let slot = (s.p_tail_reg + i) % m.cap;
                                if n.slots[slot].is_some() {
                                    return Err(format!("overwrite of live slot {slot}"));
                                }
                                n.slots[slot] = Some(s.p_next + i as u64);
                            }
                            n.p_k = k;
                            n.p_pc = 3;
                            stack.push(n);
                        }
                    }
                } else if s.p_next != VALUES_DONE {
                    stack.extend(m.producer_step(&s));
                }
                stack.extend(m.consumer_step(&s));
            }
            Ok(())
        }
    }
    let buggy = Buggy(Model { cap: 2, n_items: 4, batch_max: 2 });
    // Detection may surface as the explorer's Err (overwrite seen at the
    // write) or as a panicking invariant downstream (FIFO/uninit-read in
    // a state the extra in-flight item corrupted) — either counts.
    let detected = !matches!(
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| buggy.explore())),
        Ok(Ok(()))
    );
    assert!(
        detected,
        "the checker failed to catch a seeded off-by-one capacity bug"
    );
}

/// A stale cached head is *safe* (it is a lower bound), but a model that
/// let the cache run *ahead* of the true head would hide real bugs.
/// Seed exactly that: a refresh that returns `head + 1` (a value never
/// published), and assert the checker trips — evidence the staleness
/// modeling is load-bearing.
#[test]
fn model_detects_a_seeded_future_read_bug() {
    struct Buggy(Model);
    impl Buggy {
        fn explore(&self) -> Result<(), String> {
            let m = &self.0;
            let mut seen: HashSet<State> = HashSet::new();
            let mut stack = vec![m.initial()];
            while let Some(s) = stack.pop() {
                if !seen.insert(s.clone()) {
                    continue;
                }
                if m.done(&s) {
                    continue;
                }
                if s.p_next != VALUES_DONE && s.p_pc == 1 {
                    // Buggy refresh: reads one past the true head.
                    let mut n = s.clone();
                    n.p_cached_head = s.head + 1;
                    n.p_pc = 2;
                    stack.push(n);
                } else if s.p_next != VALUES_DONE {
                    for n in m.producer_step(&s) {
                        // Re-check the overwrite invariant leniently: the
                        // panic-based asserts fire inside producer_step,
                        // so wrap.
                        stack.push(n);
                    }
                }
                stack.extend(m.consumer_step(&s));
            }
            Ok(())
        }
    }
    let buggy = Buggy(Model { cap: 2, n_items: 4, batch_max: 2 });
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| buggy.explore()));
    assert!(
        result.is_err(),
        "the checker failed to catch a cache running ahead of the true head"
    );
}
