//! Completion-driven io_uring transport: the closest a kernel socket
//! gets to the paper's DPDK datapath.
//!
//! The mmsg transport ([`crate::transport::UdpTransport`]) already
//! amortizes syscall cost over 64-frame bursts, but every burst still
//! pays two syscalls (one `recvmmsg`, one `sendmmsg`). io_uring removes
//! the receive syscall entirely: the server keeps a steady pool of
//! in-flight receive SQEs, and on loopback the *sender's* syscall
//! context posts completion CQEs straight into the server's completion
//! ring — the serve loop reaps frames from shared memory without
//! entering the kernel at all. Only responses need an `io_uring_enter`,
//! and one `enter` carries the whole response burst plus every receive
//! re-arm staged since the last poll (DESIGN.md "DPDK substitution").
//!
//! Three feature tiers, selected by a startup capability probe
//! ([`probe`]) that degrades feature-by-feature — every environment
//! still runs, ultimately by falling back to the mmsg transport:
//!
//! * `uring:multishot` — the server tier on modern kernels (≥ 6.0): a
//!   registered provided-buffer ring (`IORING_REGISTER_PBUF_RING`) feeds
//!   one *multishot* `RECVMSG` that keeps producing a CQE per datagram
//!   without re-arming — the io_uring analogue of a DPDK mempool backing
//!   an RX queue.
//! * `uring:recvmsg` — the server fallback tier (≥ 5.4): a pool of
//!   oneshot `RECVMSG` SQEs, one per slot, re-armed on completion.
//! * `uring:fixed` / `uring:rw` — the *connected*-socket tiers used by
//!   the load generator: `READ_FIXED`/`WRITE_FIXED` over a
//!   pre-registered buffer region (`IORING_REGISTER_BUFFERS`, skipping
//!   per-op page pinning — the analogue of DPDK's hugepage-pinned
//!   mbufs), or plain `RECV`/`SEND` where fixed ops are missing.
//!
//! Everything is hand-rolled FFI in the repo's house style: raw
//! `syscall(425/426/427)` plus `mmap`, no liburing, no new crates. The
//! SQ/CQ rings are the kernel's shared-memory layout mapped directly
//! (`io_uring_setup(2)`), and struct layouts are declared locally
//! exactly like the `recvmmsg` bindings in [`crate::transport`].

use crate::transport::MAX_BATCH;

/// Tier selection for [`IoUringTransport`] construction. `Auto` follows
/// the capability probe; the explicit variants force one tier (used by
/// the probe's own self-tests and by the conformance suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UringMode {
    /// Pick the best tier the probe validated for this socket kind.
    Auto,
    /// Server tier: provided-buffer multishot `RECVMSG` (`uring:multishot`).
    Multishot,
    /// Server tier: oneshot `RECVMSG` pool (`uring:recvmsg`).
    Oneshot,
    /// Connected tier: registered fixed buffers, `READ_FIXED`/`WRITE_FIXED`
    /// (`uring:fixed`).
    Fixed,
    /// Connected tier: plain `RECV`/`SEND` (`uring:rw`).
    Plain,
}

/// Pool sizing and tier override for [`IoUringTransport`].
#[derive(Debug, Clone, Copy)]
pub struct UringConfig {
    /// Tier override (default [`UringMode::Auto`]).
    pub mode: UringMode,
    /// In-flight receive SQEs (or provided buffers, in the multishot
    /// tier) kept armed — the receive depth. Clamped to `1..=1024`.
    pub recv_pool: usize,
    /// Send slots that may be in flight at once; `send_batch` reclaims
    /// completed slots when the pool is exhausted. Clamped to `1..=1024`.
    pub send_pool: usize,
}

impl Default for UringConfig {
    fn default() -> Self {
        UringConfig {
            mode: UringMode::Auto,
            // Twice the burst bound so receives stay armed while a full
            // burst's worth of frames sits in the pending queue.
            recv_pool: 2 * MAX_BATCH,
            send_pool: 2 * MAX_BATCH,
        }
    }
}

/// What the startup capability probe established, cached per process.
#[derive(Debug, Clone)]
pub struct UringCaps {
    /// io_uring works at all: `io_uring_setup` succeeded and the oneshot
    /// `RECVMSG` tier passed a live loopback self-test. When false, the
    /// caller must fall back to the mmsg transport.
    pub available: bool,
    /// The provided-buffer multishot `RECVMSG` tier passed its
    /// self-test (kernel ≥ 6.0 and a registrable buffer ring).
    pub multishot: bool,
    /// The registered-fixed-buffer connected tier passed its self-test
    /// (`READ_FIXED`/`WRITE_FIXED` opcodes + `IORING_REGISTER_BUFFERS`).
    pub fixed: bool,
    /// `"ok"` when available, otherwise why not (errno from
    /// `io_uring_setup` under seccomp, missing opcodes, failed
    /// self-test) — recorded so a skipped bench arm is loud, never
    /// silently green.
    pub reason: String,
}

impl UringCaps {
    /// One-line summary for bench/CI logs (printed whether or not the
    /// io_uring arm runs, per the gate contract).
    pub fn summary(&self) -> String {
        if self.available {
            format!(
                "io_uring: available (multishot recvmsg: {}, registered fixed buffers: {})",
                if self.multishot { "yes" } else { "no" },
                if self.fixed { "yes" } else { "no" },
            )
        } else {
            format!("io_uring: UNAVAILABLE — {}", self.reason)
        }
    }
}

/// Probes io_uring support once per process (cached): attempts
/// `io_uring_setup`, walks `IORING_REGISTER_PROBE` opcode support, then
/// runs live loopback self-tests of each tier — a tier is only reported
/// workable after a real datagram round-tripped through it.
pub fn probe() -> &'static UringCaps {
    static CAPS: std::sync::OnceLock<UringCaps> = std::sync::OnceLock::new();
    CAPS.get_or_init(|| {
        #[cfg(target_os = "linux")]
        {
            imp::compute_caps()
        }
        #[cfg(not(target_os = "linux"))]
        {
            UringCaps {
                available: false,
                multishot: false,
                fixed: false,
                reason: "io_uring is Linux-only".to_string(),
            }
        }
    })
}

#[cfg(target_os = "linux")]
pub use imp::IoUringTransport;
#[cfg(not(target_os = "linux"))]
pub use stub::IoUringTransport;

// ---------------------------------------------------------------------------
// Non-Linux stub: same API surface, constructors always fail so callers
// fall back to the mmsg transport exactly as on a seccomp-blocked host.
// ---------------------------------------------------------------------------
#[cfg(not(target_os = "linux"))]
mod stub {
    use super::*;
    use crate::transport::{Frame, Transport, TransportStats};
    use std::io;
    use std::net::{SocketAddr, UdpSocket};

    /// Stub [`Transport`]: io_uring is Linux-only, every constructor
    /// returns [`io::ErrorKind::Unsupported`].
    #[derive(Debug)]
    pub struct IoUringTransport {
        never: std::convert::Infallible,
    }

    impl IoUringTransport {
        /// Always fails off Linux.
        pub fn server(_socket: UdpSocket) -> io::Result<IoUringTransport> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "io_uring is Linux-only"))
        }

        /// Always fails off Linux.
        pub fn server_with(_socket: UdpSocket, _cfg: UringConfig) -> io::Result<IoUringTransport> {
            Self::server(_socket)
        }

        /// Always fails off Linux.
        pub fn connected(_socket: UdpSocket) -> io::Result<IoUringTransport> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "io_uring is Linux-only"))
        }

        /// Always fails off Linux.
        pub fn connected_with(
            _socket: UdpSocket,
            _cfg: UringConfig,
        ) -> io::Result<IoUringTransport> {
            Self::connected(_socket)
        }

        /// Unreachable (no instance can exist).
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            match self.never {}
        }
    }

    impl Transport for IoUringTransport {
        fn recv_batch(&mut self, _out: &mut [Frame]) -> io::Result<usize> {
            match self.never {}
        }
        fn send_batch(&mut self, _frames: &[Frame]) -> io::Result<()> {
            match self.never {}
        }
        fn max_batch(&self) -> usize {
            match self.never {}
        }
        fn label(&self) -> &'static str {
            match self.never {}
        }
        fn stats(&self) -> TransportStats {
            match self.never {}
        }
    }
}

// ---------------------------------------------------------------------------
// Linux implementation.
// ---------------------------------------------------------------------------
#[cfg(target_os = "linux")]
mod imp {
    use super::{UringCaps, UringConfig, UringMode};
    use crate::transport::{
        decode_sockaddr, effective_socket_buffers, encode_sockaddr, sys as tsys, Frame, Transport,
        TransportStats, MAX_BATCH, MAX_FRAME,
    };
    use std::collections::VecDeque;
    use std::io;
    use std::net::{SocketAddr, UdpSocket};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::sync::atomic::{AtomicU16, AtomicU32, Ordering};

    // -----------------------------------------------------------------------
    // Raw ABI: syscall numbers, mmap, ring structs and constants. Declared
    // locally (no libc crate vendored) exactly like transport::sys; layouts
    // match the x86-64/aarch64 kernel uapi.
    // -----------------------------------------------------------------------
    pub(super) mod sys {
        pub const SYS_IO_URING_SETUP: i64 = 425;
        pub const SYS_IO_URING_ENTER: i64 = 426;
        pub const SYS_IO_URING_REGISTER: i64 = 427;

        pub const PROT_READ: i32 = 1;
        pub const PROT_WRITE: i32 = 2;
        pub const MAP_SHARED: i32 = 1;
        pub const MAP_PRIVATE: i32 = 2;
        pub const MAP_ANONYMOUS: i32 = 0x20;
        pub const MAP_POPULATE: i32 = 0x8000;

        pub const IORING_OFF_SQ_RING: i64 = 0;
        pub const IORING_OFF_CQ_RING: i64 = 0x8000000;
        pub const IORING_OFF_SQES: i64 = 0x10000000;

        pub const IORING_SETUP_CQSIZE: u32 = 1 << 3;
        /// Run completion task work on kernel transitions instead of
        /// interrupting the task with `TWA_SIGNAL` IPIs (5.19+).
        pub const IORING_SETUP_COOP_TASKRUN: u32 = 1 << 8;
        /// With COOP: raise `IORING_SQ_TASKRUN` in the SQ flags when
        /// completions are stuck behind pending task work, so a
        /// userspace reaper knows one flush enter is needed (5.19+).
        pub const IORING_SETUP_TASKRUN_FLAG: u32 = 1 << 9;
        pub const IORING_FEAT_SINGLE_MMAP: u32 = 1;
        pub const IORING_ENTER_GETEVENTS: u32 = 1;
        pub const IORING_SQ_CQ_OVERFLOW: u32 = 1 << 1;
        pub const IORING_SQ_TASKRUN: u32 = 1 << 2;

        pub const IORING_OP_READ_FIXED: u8 = 4;
        pub const IORING_OP_WRITE_FIXED: u8 = 5;
        pub const IORING_OP_SENDMSG: u8 = 9;
        pub const IORING_OP_RECVMSG: u8 = 10;
        pub const IORING_OP_ASYNC_CANCEL: u8 = 14;
        pub const IORING_OP_SEND: u8 = 26;
        pub const IORING_OP_RECV: u8 = 27;

        pub const IORING_REGISTER_BUFFERS: u32 = 0;
        pub const IORING_REGISTER_FILES: u32 = 2;
        pub const IORING_REGISTER_PROBE: u32 = 8;
        pub const IORING_REGISTER_PBUF_RING: u32 = 22;

        pub const IOSQE_FIXED_FILE: u8 = 1 << 0;
        pub const IOSQE_BUFFER_SELECT: u8 = 1 << 5;
        pub const IORING_RECV_MULTISHOT: u16 = 1 << 1;
        pub const IORING_CQE_F_BUFFER: u32 = 1;
        pub const IORING_CQE_F_MORE: u32 = 2;
        pub const IORING_CQE_BUFFER_SHIFT: u32 = 16;
        pub const IORING_ASYNC_CANCEL_ALL: u32 = 1;
        pub const IORING_ASYNC_CANCEL_ANY: u32 = 4;
        pub const IO_URING_OP_SUPPORTED: u16 = 1;

        pub const EINTR: i32 = 4;
        pub const EAGAIN: i32 = 11;
        pub const EBUSY: i32 = 16;
        pub const ENOBUFS: i32 = 105;
        pub const ECONNREFUSED: i32 = 111;
        pub const ECANCELED: i32 = 125;

        /// 64-byte submission queue entry (`struct io_uring_sqe`). The
        /// kernel's unions are flattened to the fields this module uses:
        /// `off`/`addr`/`len`/`op_flags` cover the read/write/msg/cancel
        /// shapes, `buf_index` doubles as `buf_group` for buffer select.
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct Sqe {
            pub opcode: u8,
            pub flags: u8,
            pub ioprio: u16,
            pub fd: i32,
            pub off: u64,
            pub addr: u64,
            pub len: u32,
            pub op_flags: u32,
            pub user_data: u64,
            pub buf_index: u16,
            pub personality: u16,
            pub splice_fd_in: i32,
            pub addr3: u64,
            pub pad2: u64,
        }

        impl Sqe {
            pub fn zeroed() -> Sqe {
                // SAFETY: Sqe is plain-old-data; all-zero is the kernel's
                // own "unused field" convention for SQEs.
                unsafe { std::mem::zeroed() }
            }
        }

        /// 16-byte completion queue entry (`struct io_uring_cqe`).
        #[repr(C)]
        #[derive(Clone, Copy, Debug)]
        pub struct Cqe {
            pub user_data: u64,
            pub res: i32,
            pub flags: u32,
        }

        #[repr(C)]
        #[derive(Clone, Copy, Default)]
        pub struct SqringOffsets {
            pub head: u32,
            pub tail: u32,
            pub ring_mask: u32,
            pub ring_entries: u32,
            pub flags: u32,
            pub dropped: u32,
            pub array: u32,
            pub resv1: u32,
            pub user_addr: u64,
        }

        #[repr(C)]
        #[derive(Clone, Copy, Default)]
        pub struct CqringOffsets {
            pub head: u32,
            pub tail: u32,
            pub ring_mask: u32,
            pub ring_entries: u32,
            pub overflow: u32,
            pub cqes: u32,
            pub flags: u32,
            pub resv1: u32,
            pub user_addr: u64,
        }

        #[repr(C)]
        #[derive(Clone, Copy, Default)]
        pub struct IoUringParams {
            pub sq_entries: u32,
            pub cq_entries: u32,
            pub flags: u32,
            pub sq_thread_cpu: u32,
            pub sq_thread_idle: u32,
            pub features: u32,
            pub wq_fd: u32,
            pub resv: [u32; 3],
            pub sq_off: SqringOffsets,
            pub cq_off: CqringOffsets,
        }

        /// `struct io_uring_probe` with room for every current opcode.
        #[repr(C)]
        pub struct ProbeHdr {
            pub last_op: u8,
            pub ops_len: u8,
            pub resv: u16,
            pub resv2: [u32; 3],
            pub ops: [ProbeOp; 64],
        }

        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct ProbeOp {
            pub op: u8,
            pub resv: u8,
            pub flags: u16,
            pub resv2: u32,
        }

        /// `struct io_uring_buf_reg` for `IORING_REGISTER_PBUF_RING`.
        #[repr(C)]
        pub struct BufReg {
            pub ring_addr: u64,
            pub ring_entries: u32,
            pub bgid: u16,
            pub flags: u16,
            pub resv: [u64; 3],
        }

        /// One provided-buffer ring descriptor (`struct io_uring_buf`).
        /// The ring header overlays entry 0; its tail is the u16 at byte
        /// offset 14.
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct PbufEntry {
            pub addr: u64,
            pub len: u32,
            pub bid: u16,
            pub resv: u16,
        }

        /// Header the kernel writes at the front of each provided buffer
        /// consumed by multishot `RECVMSG` (`struct io_uring_recvmsg_out`).
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct RecvmsgOut {
            pub namelen: u32,
            pub controllen: u32,
            pub payloadlen: u32,
            pub flags: u32,
        }

        extern "C" {
            pub fn syscall(num: i64, ...) -> i64;
            pub fn mmap(
                addr: *mut u8,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                offset: i64,
            ) -> *mut u8;
            pub fn munmap(addr: *mut u8, len: usize) -> i32;
        }
    }

    /// Owned `mmap` region, unmapped on drop. Used for the kernel-shared
    /// ring mappings and for anonymous buffer pools.
    struct Mmap {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the mapping is process-global memory; Mmap is only ever
    // accessed through the owning transport (one thread at a time).
    unsafe impl Send for Mmap {}

    impl Mmap {
        fn map(len: usize, flags: i32, fd: RawFd, offset: i64) -> io::Result<Mmap> {
            // SAFETY: plain mmap with arguments validated by the kernel;
            // a MAP_FAILED return is checked before use.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ | sys::PROT_WRITE,
                    flags,
                    fd,
                    offset,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }

        /// Maps one of the kernel's ring regions of an io_uring fd.
        fn ring(fd: RawFd, len: usize, offset: i64) -> io::Result<Mmap> {
            Mmap::map(len, sys::MAP_SHARED | sys::MAP_POPULATE, fd, offset)
        }

        /// Anonymous zeroed memory (buffer pools, pbuf rings).
        fn anon(len: usize) -> io::Result<Mmap> {
            Mmap::map(len, sys::MAP_PRIVATE | sys::MAP_ANONYMOUS, -1, 0)
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: ptr/len are the exact values mmap returned.
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }

    /// Loads a kernel-shared ring index with acquire ordering.
    ///
    /// # Safety
    /// `p` must point into a live ring mapping.
    unsafe fn load_acq(p: *const u32) -> u32 {
        (*(p as *const AtomicU32)).load(Ordering::Acquire)
    }

    /// Publishes a ring index with release ordering.
    ///
    /// # Safety
    /// `p` must point into a live ring mapping.
    unsafe fn store_rel(p: *mut u32, v: u32) {
        (*(p as *const AtomicU32)).store(v, Ordering::Release)
    }

    /// One io_uring instance: the fd, the three mmap'd regions, and the
    /// raw head/tail pointers into them. SQEs are staged locally
    /// (`push`) and published+submitted in batches (`submit`), so a
    /// whole response burst plus its receive re-arms ride one
    /// `io_uring_enter`.
    struct Ring {
        fd: OwnedFd,
        _sq_ring: Mmap,
        _cq_ring: Option<Mmap>,
        _sqe_mem: Mmap,
        sq_khead: *const u32,
        sq_ktail: *mut u32,
        sq_kflags: *const u32,
        sq_array: *mut u32,
        sq_mask: u32,
        sq_entries: u32,
        cq_khead: *mut u32,
        cq_ktail: *const u32,
        cqes: *const sys::Cqe,
        cq_mask: u32,
        sqe_base: *mut sys::Sqe,
        /// Next SQE slot to stage (not yet visible to the kernel).
        local_tail: u32,
        /// Tail as of the last successful submit.
        submitted_tail: u32,
        /// `io_uring_enter` syscalls issued over the ring's lifetime.
        enter_calls: u64,
    }

    // SAFETY: all raw pointers target the ring mappings owned by this
    // struct; a Ring is driven by one thread at a time (the transport is
    // `&mut self` throughout).
    unsafe impl Send for Ring {}

    impl Ring {
        /// `io_uring_setup` + the three mmaps. `cq_entries` oversizes the
        /// completion ring (multishot can post many CQEs per armed SQE).
        fn new(sq_entries: u32, cq_entries: u32) -> io::Result<Ring> {
            // Prefer cooperative task running: completions are batched
            // onto the next kernel transition instead of costing a
            // `TWA_SIGNAL` interrupt each, and `IORING_SQ_TASKRUN` tells
            // the reaper when one flush enter is owed. Older kernels
            // reject the flags with EINVAL; fall back feature-by-feature
            // like everything else in this module.
            let try_setup = |flags: u32| {
                let mut params = sys::IoUringParams {
                    flags,
                    cq_entries: cq_entries.next_power_of_two(),
                    ..Default::default()
                };
                // SAFETY: params is a valid zero-initialized
                // io_uring_params; the kernel fills in the offsets on
                // success.
                let rc = unsafe {
                    sys::syscall(
                        sys::SYS_IO_URING_SETUP,
                        sq_entries.next_power_of_two() as i64,
                        &mut params as *mut sys::IoUringParams,
                    )
                };
                (rc, params)
            };
            let (mut rc, mut params) = try_setup(
                sys::IORING_SETUP_CQSIZE
                    | sys::IORING_SETUP_COOP_TASKRUN
                    | sys::IORING_SETUP_TASKRUN_FLAG,
            );
            if rc < 0 {
                (rc, params) = try_setup(sys::IORING_SETUP_CQSIZE);
            }
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: rc is a fresh fd we own exclusively.
            let fd = unsafe { OwnedFd::from_raw_fd(rc as i32) };
            let raw = fd.as_raw_fd();

            let sq_size = params.sq_off.array as usize + params.sq_entries as usize * 4;
            let cq_size =
                params.cq_off.cqes as usize + params.cq_entries as usize * std::mem::size_of::<sys::Cqe>();
            let single = params.features & sys::IORING_FEAT_SINGLE_MMAP != 0;
            let sq_ring = Mmap::ring(
                raw,
                if single { sq_size.max(cq_size) } else { sq_size },
                sys::IORING_OFF_SQ_RING,
            )?;
            let (cq_base, cq_ring) = if single {
                (sq_ring.ptr, None)
            } else {
                let m = Mmap::ring(raw, cq_size, sys::IORING_OFF_CQ_RING)?;
                (m.ptr, Some(m))
            };
            let sqe_mem = Mmap::ring(
                raw,
                params.sq_entries as usize * std::mem::size_of::<sys::Sqe>(),
                sys::IORING_OFF_SQES,
            )?;

            let sq_base = sq_ring.ptr;
            // SAFETY: every offset below comes from the kernel's params
            // for these freshly created mappings.
            unsafe {
                Ok(Ring {
                    sq_khead: sq_base.add(params.sq_off.head as usize) as *const u32,
                    sq_ktail: sq_base.add(params.sq_off.tail as usize) as *mut u32,
                    sq_kflags: sq_base.add(params.sq_off.flags as usize) as *const u32,
                    sq_array: sq_base.add(params.sq_off.array as usize) as *mut u32,
                    sq_mask: *(sq_base.add(params.sq_off.ring_mask as usize) as *const u32),
                    sq_entries: params.sq_entries,
                    cq_khead: cq_base.add(params.cq_off.head as usize) as *mut u32,
                    cq_ktail: cq_base.add(params.cq_off.tail as usize) as *const u32,
                    cqes: cq_base.add(params.cq_off.cqes as usize) as *const sys::Cqe,
                    cq_mask: *(cq_base.add(params.cq_off.ring_mask as usize) as *const u32),
                    sqe_base: sqe_mem.ptr as *mut sys::Sqe,
                    local_tail: load_acq(sq_base.add(params.sq_off.tail as usize) as *const u32),
                    submitted_tail: load_acq(sq_base.add(params.sq_off.tail as usize) as *const u32),
                    fd,
                    _sq_ring: sq_ring,
                    _cq_ring: cq_ring,
                    _sqe_mem: sqe_mem,
                    enter_calls: 0,
                })
            }
        }

        /// Stages one SQE locally. Returns false when the SQ is full (the
        /// caller submits and retries — after a submit the kernel has
        /// consumed every staged SQE, so a retry always succeeds).
        fn push(&mut self, sqe: sys::Sqe) -> bool {
            // SAFETY: ring pointers are valid for the ring's lifetime.
            let head = unsafe { load_acq(self.sq_khead) };
            if self.local_tail.wrapping_sub(head) >= self.sq_entries {
                return false;
            }
            let idx = self.local_tail & self.sq_mask;
            // SAFETY: idx < sq_entries bounds both arrays.
            unsafe {
                *self.sqe_base.add(idx as usize) = sqe;
                *self.sq_array.add(idx as usize) = idx;
            }
            self.local_tail = self.local_tail.wrapping_add(1);
            true
        }

        /// SQEs staged but not yet handed to the kernel.
        fn staged(&self) -> u32 {
            self.local_tail.wrapping_sub(self.submitted_tail)
        }

        /// Publishes staged SQEs and calls `io_uring_enter` until all are
        /// consumed; waits for `wait` completions when nonzero. A no-op
        /// when nothing is staged and no wait is requested.
        ///
        /// Every enter carries `GETEVENTS` even with `wait == 0`: at
        /// `min_complete = 0` it returns immediately but still runs the
        /// ring's pending task work, so the submit syscall doubles as
        /// the completion flush and the next [`Self::reap_into`] stays
        /// on the shared-memory fast path.
        fn submit(&mut self, wait: u32) -> io::Result<()> {
            let mut to_submit = self.staged();
            if to_submit == 0 && wait == 0 {
                return Ok(());
            }
            // SAFETY: publishing our staged tail; the slots below it were
            // fully written by push().
            unsafe { store_rel(self.sq_ktail, self.local_tail) };
            loop {
                let flags = sys::IORING_ENTER_GETEVENTS;
                // SAFETY: plain io_uring_enter on our fd; null sigset.
                let rc = unsafe {
                    sys::syscall(
                        sys::SYS_IO_URING_ENTER,
                        self.fd.as_raw_fd() as i64,
                        to_submit as i64,
                        wait as i64,
                        flags as i64,
                        std::ptr::null::<u8>(),
                        0usize,
                    )
                };
                self.enter_calls += 1;
                if rc >= 0 {
                    self.submitted_tail = self.submitted_tail.wrapping_add(rc as u32);
                    to_submit = self.staged();
                    if to_submit == 0 {
                        return Ok(());
                    }
                    // Partial submit (CQ pressure): keep pushing.
                    continue;
                }
                let err = io::Error::last_os_error();
                match err.raw_os_error() {
                    Some(sys::EINTR) => continue,
                    // CQ backlog: force a completion flush, then retry.
                    Some(sys::EBUSY) | Some(sys::EAGAIN) => {
                        self.enter_getevents()?;
                        std::thread::yield_now();
                        continue;
                    }
                    _ => return Err(err),
                }
            }
        }

        /// `io_uring_enter(0, 0, GETEVENTS)`: returns immediately, but
        /// runs the ring's pending task work and flushes any overflowed
        /// CQEs back into the ring.
        fn enter_getevents(&mut self) -> io::Result<()> {
            loop {
                // SAFETY: as in submit().
                let rc = unsafe {
                    sys::syscall(
                        sys::SYS_IO_URING_ENTER,
                        self.fd.as_raw_fd() as i64,
                        0i64,
                        0i64,
                        sys::IORING_ENTER_GETEVENTS as i64,
                        std::ptr::null::<u8>(),
                        0usize,
                    )
                };
                self.enter_calls += 1;
                if rc >= 0 {
                    return Ok(());
                }
                let err = io::Error::last_os_error();
                match err.raw_os_error() {
                    Some(sys::EINTR) => continue,
                    _ => return Err(err),
                }
            }
        }

        /// Drains every pending CQE into `out` (cleared first). Reaping
        /// is pure shared-memory reads — no syscall — unless the kernel
        /// flagged a CQ overflow or (under `COOP_TASKRUN`) completions
        /// stuck behind pending task work, in which case one flush enter
        /// covers the whole batch.
        fn reap_into(&mut self, out: &mut Vec<sys::Cqe>) -> io::Result<()> {
            out.clear();
            // SAFETY: ring pointers valid for the ring's lifetime.
            unsafe {
                if load_acq(self.sq_kflags)
                    & (sys::IORING_SQ_CQ_OVERFLOW | sys::IORING_SQ_TASKRUN)
                    != 0
                {
                    self.enter_getevents()?;
                }
                let mut head = load_acq(self.cq_khead as *const u32);
                let tail = load_acq(self.cq_ktail);
                while head != tail {
                    out.push(*self.cqes.add((head & self.cq_mask) as usize));
                    head = head.wrapping_add(1);
                }
                store_rel(self.cq_khead, head);
            }
            Ok(())
        }

        /// Registers `fd` as fixed-file index 0 (`IORING_REGISTER_FILES`):
        /// SQEs flagged `IOSQE_FIXED_FILE` then address the socket by
        /// index and skip the per-op `fget`/`fput` refcount pair.
        fn register_files(&self, fd: i32) -> io::Result<()> {
            let fds = [fd];
            self.register(sys::IORING_REGISTER_FILES, fds.as_ptr() as *const u8, 1)
        }

        /// `io_uring_register` wrapper.
        fn register(&self, op: u32, arg: *const u8, nr: u32) -> io::Result<()> {
            // SAFETY: arg/nr validity is each call site's contract with
            // the specific register op.
            let rc = unsafe {
                sys::syscall(
                    sys::SYS_IO_URING_REGISTER,
                    self.fd.as_raw_fd() as i64,
                    op as i64,
                    arg,
                    nr as i64,
                )
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    /// Buffer group id for the provided-buffer ring (arbitrary tag).
    const BGID: u16 = 0xBEEF_u16 & 0x7FFF;
    /// Size of one provided buffer: the recvmsg_out header (16) + name
    /// space (128) + payload capacity (112 ≥ MAX_FRAME, so oversized
    /// datagrams truncate exactly like the mmsg transport's iovec).
    const PBUF_SIZE: usize = 256;
    /// Name space reserved per buffer (matches msghdr.msg_namelen in the
    /// multishot template).
    const PBUF_NAME: usize = 128;
    /// Offset of the payload inside a provided buffer.
    const PBUF_PAYLOAD_OFF: usize = std::mem::size_of::<sys::RecvmsgOut>() + PBUF_NAME;

    /// A registered provided-buffer ring (`IORING_REGISTER_PBUF_RING`):
    /// the DPDK-mempool analogue feeding the multishot receive. Buffers
    /// are handed back to the kernel by appending their ids at the tail.
    struct BufRing {
        ring: Mmap,
        bufs: Mmap,
        mask: u32,
        tail: u16,
    }

    impl BufRing {
        fn new(ring: &Ring, entries: u32) -> io::Result<BufRing> {
            let entries = entries.next_power_of_two();
            let rm = Mmap::anon(entries as usize * std::mem::size_of::<sys::PbufEntry>())?;
            let bm = Mmap::anon(entries as usize * PBUF_SIZE)?;
            let reg = sys::BufReg {
                ring_addr: rm.ptr as u64,
                ring_entries: entries,
                bgid: BGID,
                flags: 0,
                resv: [0; 3],
            };
            ring.register(
                sys::IORING_REGISTER_PBUF_RING,
                &reg as *const sys::BufReg as *const u8,
                1,
            )?;
            let mut br = BufRing { ring: rm, bufs: bm, mask: entries - 1, tail: 0 };
            for bid in 0..entries as u16 {
                br.recycle(bid);
            }
            Ok(br)
        }

        /// Start address of buffer `bid`.
        fn buf_ptr(&self, bid: u16) -> *const u8 {
            // SAFETY: bid < entries by construction; offset stays in-bounds.
            unsafe { self.bufs.ptr.add(bid as usize * PBUF_SIZE) }
        }

        /// Returns buffer `bid` to the kernel (descriptor write + tail
        /// publish; the tail is the u16 at byte offset 14 of the ring).
        fn recycle(&mut self, bid: u16) {
            let idx = (self.tail as u32 & self.mask) as usize;
            // SAFETY: idx < entries bounds the descriptor array; the tail
            // u16 lives inside the ring mapping at offset 14.
            unsafe {
                *(self.ring.ptr as *mut sys::PbufEntry).add(idx) = sys::PbufEntry {
                    addr: self.buf_ptr(bid) as u64,
                    len: PBUF_SIZE as u32,
                    bid,
                    resv: 0,
                };
                self.tail = self.tail.wrapping_add(1);
                (*(self.ring.ptr.add(14) as *const AtomicU16)).store(self.tail, Ordering::Release);
            }
        }

        /// Leaks both mappings (drop-path safety valve: the kernel may
        /// still write them if a drain timed out).
        fn leak(self) {
            std::mem::forget(self.ring);
            std::mem::forget(self.bufs);
        }
    }

    /// Internal tier (the validated flavour of [`UringMode`]).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Tier {
        Multishot,
        Oneshot,
        Fixed,
        Plain,
    }

    // user_data encoding: kind in the high 32 bits, slot index below.
    const KIND_RX: u64 = 1;
    const KIND_TX: u64 = 2;
    const KIND_MS: u64 = 3;
    const KIND_CANCEL: u64 = 4;

    /// Per-slot scratch for `SENDMSG`/oneshot-`RECVMSG` ops: payload,
    /// sockaddr, iovec and msghdr at stable heap addresses (the Vec is
    /// sized once and never grown — the kernel holds pointers into it
    /// while an op is in flight).
    struct MsgSlot {
        payload: [u8; MAX_FRAME],
        addr: tsys::SockAddrStorage,
        iov: tsys::IoVec,
        hdr: tsys::MsgHdr,
    }

    impl MsgSlot {
        fn zeroed() -> MsgSlot {
            MsgSlot {
                payload: [0u8; MAX_FRAME],
                addr: tsys::SockAddrStorage::zeroed(),
                iov: tsys::IoVec { iov_base: std::ptr::null_mut(), iov_len: 0 },
                hdr: tsys::MsgHdr {
                    msg_name: std::ptr::null_mut(),
                    msg_namelen: 0,
                    msg_iov: std::ptr::null_mut(),
                    msg_iovlen: 0,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
            }
        }
    }

    /// The io_uring implementation of [`Transport`]. See the module docs
    /// for the tier structure; construct via [`IoUringTransport::server`]
    /// (unconnected socket, addresses decoded per frame) or
    /// [`IoUringTransport::connected`] (connected socket, fixed-buffer
    /// fast path).
    pub struct IoUringTransport {
        ring: Ring,
        socket: UdpSocket,
        tier: Tier,
        peer: Option<SocketAddr>,
        recv_pool: usize,
        send_pool: usize,
        recv_slots: Vec<MsgSlot>,
        send_slots: Vec<MsgSlot>,
        region: Option<Mmap>,
        bufring: Option<BufRing>,
        ms_hdr: Option<Box<tsys::MsgHdr>>,
        free_send: Vec<u32>,
        pending_rx: VecDeque<Frame>,
        /// While `recv_batch` reaps, these describe the caller's output
        /// slice so completed receives land in it directly instead of
        /// bouncing through `pending_rx`; null/0 outside that window.
        out_ptr: *mut Frame,
        out_cap: usize,
        out_len: usize,
        cq_scratch: Vec<sys::Cqe>,
        /// Socket registered as fixed-file index 0 — SQEs address it by
        /// index instead of paying a file refcount per op.
        fixed_file: bool,
        in_flight: u32,
        tx_since_enter: bool,
        draining: bool,
        broken: Option<io::ErrorKind>,
        stats: TransportStats,
    }

    // SAFETY: every raw pointer the kernel holds targets heap storage
    // owned by this struct (slot Vecs, the Box'd msghdr template, mmap
    // regions) whose addresses survive moves of the struct itself; the
    // transport is driven through `&mut self` by one thread at a time.
    unsafe impl Send for IoUringTransport {}

    impl std::fmt::Debug for IoUringTransport {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("IoUringTransport")
                .field("label", &self.label())
                .field("recv_pool", &self.recv_pool)
                .field("send_pool", &self.send_pool)
                .field("in_flight", &self.in_flight)
                .field("stats", &self.stats())
                .finish()
        }
    }

    impl IoUringTransport {
        /// Server transport on an unconnected socket: best validated
        /// server tier ([`UringCaps::multishot`] decides), default pools.
        pub fn server(socket: UdpSocket) -> io::Result<IoUringTransport> {
            Self::server_with(socket, UringConfig::default())
        }

        /// Server transport with explicit tier/pool configuration.
        /// `Fixed`/`Plain` modes are rejected (those are connected-socket
        /// tiers).
        pub fn server_with(socket: UdpSocket, cfg: UringConfig) -> io::Result<IoUringTransport> {
            let tier = match cfg.mode {
                UringMode::Auto => {
                    let caps = super::probe();
                    if !caps.available {
                        return Err(io::Error::new(
                            io::ErrorKind::Unsupported,
                            format!("io_uring unavailable: {}", caps.reason),
                        ));
                    }
                    if caps.multishot {
                        Tier::Multishot
                    } else {
                        Tier::Oneshot
                    }
                }
                UringMode::Multishot => Tier::Multishot,
                UringMode::Oneshot => Tier::Oneshot,
                UringMode::Fixed | UringMode::Plain => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "Fixed/Plain are connected-socket tiers; use connected_with",
                    ))
                }
            };
            Self::build(socket, tier, None, cfg)
        }

        /// Client transport on a *connected* socket (errors if
        /// `peer_addr` is unset): registered fixed buffers where the
        /// probe validated them, plain `RECV`/`SEND` otherwise.
        pub fn connected(socket: UdpSocket) -> io::Result<IoUringTransport> {
            Self::connected_with(socket, UringConfig::default())
        }

        /// Connected-socket transport with explicit tier/pool
        /// configuration. `Multishot`/`Oneshot` modes are rejected.
        pub fn connected_with(socket: UdpSocket, cfg: UringConfig) -> io::Result<IoUringTransport> {
            let peer = socket.peer_addr()?;
            let tier = match cfg.mode {
                UringMode::Auto => {
                    let caps = super::probe();
                    if !caps.available {
                        return Err(io::Error::new(
                            io::ErrorKind::Unsupported,
                            format!("io_uring unavailable: {}", caps.reason),
                        ));
                    }
                    if caps.fixed {
                        Tier::Fixed
                    } else {
                        Tier::Plain
                    }
                }
                UringMode::Fixed => Tier::Fixed,
                UringMode::Plain => Tier::Plain,
                UringMode::Multishot | UringMode::Oneshot => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "Multishot/Oneshot are server tiers; use server_with",
                    ))
                }
            };
            Self::build(socket, tier, Some(peer), cfg)
        }

        fn build(
            socket: UdpSocket,
            tier: Tier,
            peer: Option<SocketAddr>,
            cfg: UringConfig,
        ) -> io::Result<IoUringTransport> {
            let recv_pool = cfg.recv_pool.clamp(1, 1024);
            let send_pool = cfg.send_pool.clamp(1, 1024);
            // SQ holds one slot per possible in-flight op plus cancel
            // slack; CQ is oversized so bursts don't overflow.
            let sq = ((recv_pool + send_pool + 8) as u32).next_power_of_two().min(4096);
            let cq = (sq * 4).min(16384);
            let ring = Ring::new(sq, cq)?;
            let mut stats = TransportStats::default();
            if let Ok((rcv, snd)) = effective_socket_buffers(&socket) {
                stats.rcvbuf_bytes = rcv as u64;
                stats.sndbuf_bytes = snd as u64;
            }
            let mut t = IoUringTransport {
                ring,
                socket,
                tier,
                peer,
                recv_pool,
                send_pool,
                recv_slots: Vec::new(),
                send_slots: Vec::new(),
                region: None,
                bufring: None,
                ms_hdr: None,
                free_send: (0..send_pool as u32).rev().collect(),
                pending_rx: VecDeque::with_capacity(recv_pool),
                out_ptr: std::ptr::null_mut(),
                out_cap: 0,
                out_len: 0,
                cq_scratch: Vec::with_capacity(cq as usize),
                fixed_file: false,
                in_flight: 0,
                tx_since_enter: false,
                draining: false,
                broken: None,
                stats,
            };
            // Best-effort: a kernel or seccomp filter that rejects file
            // registration just means SQEs carry the raw fd.
            t.fixed_file = t.ring.register_files(t.socket.as_raw_fd()).is_ok();
            match tier {
                Tier::Multishot => {
                    t.bufring = Some(BufRing::new(&t.ring, recv_pool as u32)?);
                    let mut hdr = MsgSlot::zeroed().hdr;
                    // Template msghdr: name space only (the kernel
                    // reserves msg_namelen bytes per provided buffer for
                    // the source address); no iov, payload comes from the
                    // buffer group.
                    hdr.msg_namelen = PBUF_NAME as u32;
                    t.ms_hdr = Some(Box::new(hdr));
                    t.send_slots = (0..send_pool).map(|_| MsgSlot::zeroed()).collect();
                    t.arm_multishot()?;
                }
                Tier::Oneshot => {
                    t.recv_slots = (0..recv_pool).map(|_| MsgSlot::zeroed()).collect();
                    t.send_slots = (0..send_pool).map(|_| MsgSlot::zeroed()).collect();
                    for i in 0..recv_pool {
                        t.arm_recv_msg(i)?;
                    }
                }
                Tier::Fixed | Tier::Plain => {
                    let used = (recv_pool + send_pool) * MAX_FRAME;
                    let region = Mmap::anon((used + 4095) & !4095)?;
                    if tier == Tier::Fixed {
                        // One big registered buffer (index 0) covering
                        // both pools: pages are pinned once at
                        // registration instead of per-op.
                        let iov = tsys::IoVec { iov_base: region.ptr, iov_len: used };
                        t.ring.register(
                            sys::IORING_REGISTER_BUFFERS,
                            &iov as *const tsys::IoVec as *const u8,
                            1,
                        )?;
                    }
                    t.region = Some(region);
                    for i in 0..recv_pool {
                        t.arm_recv_connected(i)?;
                    }
                }
            }
            // Arm the whole receive pool with a single enter.
            t.ring.submit(0)?;
            Ok(t)
        }

        /// The local address of the underlying socket.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.socket.local_addr()
        }

        /// Borrows the underlying socket (e.g. to tune buffer sizes).
        pub fn socket(&self) -> &UdpSocket {
            &self.socket
        }

        fn recv_ptr(&self, i: usize) -> *mut u8 {
            // SAFETY: i < recv_pool; region covers (recv+send)*MAX_FRAME.
            unsafe { self.region.as_ref().expect("connected tier has region").ptr.add(i * MAX_FRAME) }
        }

        fn send_ptr(&self, j: usize) -> *mut u8 {
            // SAFETY: j < send_pool; offset stays inside the region.
            unsafe {
                self.region
                    .as_ref()
                    .expect("connected tier has region")
                    .ptr
                    .add((self.recv_pool + j) * MAX_FRAME)
            }
        }

        /// Stages one SQE, flushing first if the SQ is full; tracks the
        /// in-flight count the drop-path drain relies on.
        fn stage(&mut self, sqe: sys::Sqe) -> io::Result<()> {
            if !self.ring.push(sqe) {
                self.flush(0)?;
                if !self.ring.push(sqe) {
                    return Err(io::Error::other("io_uring SQ full after submit"));
                }
            }
            self.in_flight += 1;
            Ok(())
        }

        /// Publishes staged SQEs with one `io_uring_enter` (waiting for
        /// `wait` completions when nonzero) and maintains the
        /// send-syscall counter.
        fn flush(&mut self, wait: u32) -> io::Result<()> {
            let carried_tx = self.tx_since_enter && self.ring.staged() > 0;
            if self.ring.staged() == 0 && wait == 0 {
                return Ok(());
            }
            self.ring.submit(wait)?;
            if carried_tx {
                self.stats.send_calls += 1;
                self.tx_since_enter = false;
            }
            Ok(())
        }

        /// Points `sqe` at the socket: registered index 0 when file
        /// registration succeeded, the raw fd otherwise.
        fn sqe_socket(&self, sqe: &mut sys::Sqe) {
            if self.fixed_file {
                sqe.fd = 0;
                sqe.flags |= sys::IOSQE_FIXED_FILE;
            } else {
                sqe.fd = self.socket.as_raw_fd();
            }
        }

        /// Arms (or re-arms) the multishot receive.
        fn arm_multishot(&mut self) -> io::Result<()> {
            let hdr = self.ms_hdr.as_ref().expect("multishot tier has template");
            let mut sqe = sys::Sqe::zeroed();
            sqe.opcode = sys::IORING_OP_RECVMSG;
            self.sqe_socket(&mut sqe);
            sqe.addr = &**hdr as *const tsys::MsgHdr as u64;
            // len stays 0: the provided buffer dictates capacity (a
            // nonzero len would clamp the buffer-select length below the
            // recvmsg_out header and fail).
            sqe.ioprio = sys::IORING_RECV_MULTISHOT;
            sqe.flags |= sys::IOSQE_BUFFER_SELECT;
            sqe.buf_index = BGID; // buf_group in this SQE shape
            sqe.user_data = KIND_MS << 32;
            self.stage(sqe)?;
            Ok(())
        }

        /// Arms (or re-arms) oneshot `RECVMSG` slot `i`.
        fn arm_recv_msg(&mut self, i: usize) -> io::Result<()> {
            let slot = &mut self.recv_slots[i];
            slot.addr = tsys::SockAddrStorage::zeroed();
            slot.iov = tsys::IoVec { iov_base: slot.payload.as_mut_ptr(), iov_len: MAX_FRAME };
            slot.hdr = tsys::MsgHdr {
                msg_name: slot.addr.bytes.as_mut_ptr(),
                msg_namelen: 128,
                msg_iov: &mut slot.iov,
                msg_iovlen: 1,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            };
            let mut sqe = sys::Sqe::zeroed();
            sqe.opcode = sys::IORING_OP_RECVMSG;
            sqe.addr = &self.recv_slots[i].hdr as *const tsys::MsgHdr as u64;
            sqe.len = 1;
            sqe.user_data = (KIND_RX << 32) | i as u64;
            self.sqe_socket(&mut sqe);
            self.stage(sqe)
        }

        /// Arms (or re-arms) connected-tier receive slot `i`.
        fn arm_recv_connected(&mut self, i: usize) -> io::Result<()> {
            let mut sqe = sys::Sqe::zeroed();
            sqe.opcode = if self.tier == Tier::Fixed {
                sys::IORING_OP_READ_FIXED
            } else {
                sys::IORING_OP_RECV
            };
            self.sqe_socket(&mut sqe);
            sqe.addr = self.recv_ptr(i) as u64;
            sqe.len = MAX_FRAME as u32;
            sqe.buf_index = 0;
            sqe.user_data = (KIND_RX << 32) | i as u64;
            self.stage(sqe)
        }

        /// Lands a decoded frame: straight into the output slice
        /// `recv_batch` registered when one is live and has room,
        /// spilling into `pending_rx` otherwise (reaps triggered from
        /// the send path, or a burst larger than the caller's slice).
        fn deliver(&mut self, f: Frame) {
            if self.out_len < self.out_cap {
                // SAFETY: out_ptr/out_cap describe the `&mut [Frame]`
                // recv_batch holds exclusively for the duration of
                // this reap; out_len < out_cap keeps us in bounds.
                unsafe { *self.out_ptr.add(self.out_len) = f };
                self.out_len += 1;
            } else {
                self.pending_rx.push_back(f);
            }
        }

        /// Reaps every pending CQE and processes it (frames delivered,
        /// send slots freed, receive re-arms staged).
        fn reap_and_process(&mut self) -> io::Result<()> {
            let mut cqes = std::mem::take(&mut self.cq_scratch);
            self.ring.reap_into(&mut cqes)?;
            let mut result = Ok(());
            for cqe in &cqes {
                if let Err(e) = self.handle_cqe(*cqe) {
                    result = Err(e);
                    break;
                }
            }
            self.cq_scratch = cqes;
            result
        }

        fn handle_cqe(&mut self, cqe: sys::Cqe) -> io::Result<()> {
            let kind = cqe.user_data >> 32;
            let idx = (cqe.user_data & 0xffff_ffff) as usize;
            match kind {
                KIND_RX => {
                    self.in_flight -= 1;
                    if cqe.res >= 0 {
                        if let Some(f) = self.frame_from_rx(idx, cqe.res as usize) {
                            self.deliver(f);
                        }
                    } else {
                        match -cqe.res {
                            // Shutdown cancel: the slot stays down.
                            sys::ECANCELED => return Ok(()),
                            // ICMP bounce / transient: re-arm silently.
                            sys::ECONNREFUSED | sys::EINTR | sys::EAGAIN => {}
                            _ => {
                                self.broken =
                                    Some(io::Error::from_raw_os_error(-cqe.res).kind());
                                return Ok(());
                            }
                        }
                    }
                    if !self.draining {
                        match self.tier {
                            Tier::Oneshot => self.arm_recv_msg(idx)?,
                            Tier::Fixed | Tier::Plain => self.arm_recv_connected(idx)?,
                            Tier::Multishot => unreachable!("multishot uses KIND_MS"),
                        }
                    }
                    Ok(())
                }
                KIND_MS => {
                    if cqe.res >= 0 {
                        if cqe.flags & sys::IORING_CQE_F_BUFFER != 0 {
                            let bid = (cqe.flags >> sys::IORING_CQE_BUFFER_SHIFT) as u16;
                            if let Some(f) = self.frame_from_pbuf(bid, cqe.res as usize) {
                                self.deliver(f);
                            }
                            self.bufring
                                .as_mut()
                                .expect("multishot tier has bufring")
                                .recycle(bid);
                        }
                        if cqe.flags & sys::IORING_CQE_F_MORE == 0 {
                            // Terminal CQE: the arm is gone, restore it.
                            self.in_flight -= 1;
                            if !self.draining {
                                self.arm_multishot()?;
                            }
                        }
                    } else {
                        self.in_flight -= 1;
                        match -cqe.res {
                            sys::ECANCELED => {}
                            // Buffer-ring exhaustion or transient error:
                            // buffers were recycled above, re-arm.
                            sys::ENOBUFS | sys::EINTR | sys::EAGAIN | sys::ECONNREFUSED => {
                                if !self.draining {
                                    self.arm_multishot()?;
                                }
                            }
                            _ => {
                                self.broken =
                                    Some(io::Error::from_raw_os_error(-cqe.res).kind());
                            }
                        }
                    }
                    Ok(())
                }
                KIND_TX => {
                    self.in_flight -= 1;
                    self.free_send.push(idx as u32);
                    if cqe.res < 0 {
                        match -cqe.res {
                            // Matches the mmsg transport: a refused UDP
                            // send still counts as sent.
                            sys::ECONNREFUSED | sys::ECANCELED | sys::EINTR => {}
                            _ => {
                                self.broken =
                                    Some(io::Error::from_raw_os_error(-cqe.res).kind());
                            }
                        }
                    }
                    Ok(())
                }
                _ => {
                    // KIND_CANCEL (or unknown): just balance the ledger.
                    self.in_flight -= 1;
                    Ok(())
                }
            }
        }

        /// Decodes a completed oneshot/connected receive into a frame.
        fn frame_from_rx(&self, idx: usize, res: usize) -> Option<Frame> {
            let mut f = Frame::empty();
            f.len = res.min(MAX_FRAME) as u16;
            match self.tier {
                Tier::Oneshot => {
                    let slot = &self.recv_slots[idx];
                    f.addr = decode_sockaddr(&slot.addr, 128)?;
                    f.buf[..f.len as usize].copy_from_slice(&slot.payload[..f.len as usize]);
                }
                Tier::Fixed | Tier::Plain => {
                    f.addr = self.peer.expect("connected tier has peer");
                    // SAFETY: the kernel wrote `res <= MAX_FRAME` bytes
                    // into this slot; the op completed so it no longer
                    // writes there.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            self.recv_ptr(idx),
                            f.buf.as_mut_ptr(),
                            f.len as usize,
                        );
                    }
                }
                Tier::Multishot => unreachable!("multishot uses frame_from_pbuf"),
            }
            Some(f)
        }

        /// Decodes a multishot completion out of provided buffer `bid`:
        /// recvmsg_out header, then the source address, then the payload.
        fn frame_from_pbuf(&self, bid: u16, total: usize) -> Option<Frame> {
            if !(PBUF_PAYLOAD_OFF..=PBUF_SIZE).contains(&total) {
                return None;
            }
            let p = self.bufring.as_ref().expect("multishot tier has bufring").buf_ptr(bid);
            // SAFETY: the kernel wrote `total >= header+name` bytes into
            // this PBUF_SIZE buffer; the CQE hands us exclusive access
            // until recycle().
            let (out, mut storage) = unsafe {
                let out = std::ptr::read_unaligned(p as *const sys::RecvmsgOut);
                let mut storage = tsys::SockAddrStorage::zeroed();
                std::ptr::copy_nonoverlapping(
                    p.add(std::mem::size_of::<sys::RecvmsgOut>()),
                    storage.bytes.as_mut_ptr(),
                    PBUF_NAME,
                );
                (out, storage)
            };
            let _ = &mut storage;
            let addr = decode_sockaddr(&storage, out.namelen)?;
            // Bytes that landed in the buffer vs. the datagram's true
            // size: the shorter is the valid payload, capped at the
            // frame's capacity (oversized datagrams truncate, matching
            // the mmsg transport).
            let copied = total - PBUF_PAYLOAD_OFF;
            let len = copied.min(out.payloadlen as usize).min(MAX_FRAME);
            let mut f = Frame::empty();
            f.len = len as u16;
            f.addr = addr;
            // SAFETY: len <= copied bytes were written past the payload
            // offset by the kernel.
            unsafe {
                std::ptr::copy_nonoverlapping(p.add(PBUF_PAYLOAD_OFF), f.buf.as_mut_ptr(), len);
            }
            Some(f)
        }

        /// Stages one outbound frame, reclaiming a send slot (waiting on
        /// completions) if the pool is exhausted.
        fn stage_send(&mut self, f: &Frame) -> io::Result<()> {
            let slot_idx = loop {
                if let Some(i) = self.free_send.pop() {
                    break i as usize;
                }
                // Pool exhausted: put staged work on the wire, wait for
                // one completion, reclaim.
                self.flush(1)?;
                self.reap_and_process()?;
                if let Some(k) = self.broken {
                    return Err(io::Error::from(k));
                }
            };
            let mut sqe = sys::Sqe::zeroed();
            self.sqe_socket(&mut sqe);
            sqe.user_data = (KIND_TX << 32) | slot_idx as u64;
            match self.tier {
                Tier::Multishot | Tier::Oneshot => {
                    let slot = &mut self.send_slots[slot_idx];
                    slot.payload[..f.len as usize].copy_from_slice(f.payload());
                    let namelen = encode_sockaddr(&f.addr, &mut slot.addr);
                    slot.iov = tsys::IoVec {
                        iov_base: slot.payload.as_mut_ptr(),
                        iov_len: f.len as usize,
                    };
                    slot.hdr = tsys::MsgHdr {
                        msg_name: slot.addr.bytes.as_mut_ptr(),
                        msg_namelen: namelen,
                        msg_iov: &mut slot.iov,
                        msg_iovlen: 1,
                        msg_control: std::ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    };
                    sqe.opcode = sys::IORING_OP_SENDMSG;
                    sqe.addr = &slot.hdr as *const tsys::MsgHdr as u64;
                    sqe.len = 1;
                }
                Tier::Fixed | Tier::Plain => {
                    // SAFETY: slot_idx < send_pool; the slot is free (not
                    // referenced by any in-flight op).
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            f.payload().as_ptr(),
                            self.send_ptr(slot_idx),
                            f.len as usize,
                        );
                    }
                    sqe.opcode = if self.tier == Tier::Fixed {
                        sys::IORING_OP_WRITE_FIXED
                    } else {
                        sys::IORING_OP_SEND
                    };
                    sqe.addr = self.send_ptr(slot_idx) as u64;
                    sqe.len = f.len as u32;
                    sqe.buf_index = 0;
                }
            }
            self.stage(sqe)?;
            self.tx_since_enter = true;
            self.stats.send_frames += 1;
            Ok(())
        }

        /// Cancels everything in flight and drains the CQ with a bounded
        /// deadline. On success `in_flight == 0` and all slot memory is
        /// safe to free.
        fn cancel_and_drain(&mut self) -> io::Result<()> {
            if self.in_flight == 0 {
                return Ok(());
            }
            let mut sqe = sys::Sqe::zeroed();
            sqe.opcode = sys::IORING_OP_ASYNC_CANCEL;
            sqe.fd = -1;
            sqe.op_flags = sys::IORING_ASYNC_CANCEL_ALL | sys::IORING_ASYNC_CANCEL_ANY;
            sqe.user_data = KIND_CANCEL << 32;
            self.stage(sqe)?;
            self.ring.submit(0)?;
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(1);
            while self.in_flight > 0 {
                self.reap_and_process()?;
                if self.in_flight == 0 {
                    break;
                }
                if std::time::Instant::now() > deadline {
                    return Err(io::ErrorKind::TimedOut.into());
                }
                // Entering the kernel runs the ring's task work, which
                // is what retires the cancelled ops.
                self.ring.enter_getevents()?;
                std::thread::yield_now();
            }
            Ok(())
        }
    }

    impl Transport for IoUringTransport {
        fn recv_batch(&mut self, out: &mut [Frame]) -> io::Result<usize> {
            if out.is_empty() {
                return Ok(0);
            }
            if let Some(k) = self.broken {
                return Err(io::Error::from(k));
            }
            // Spillover from earlier reaps drains first (FIFO order),
            // then the reap writes fresh completions into the remainder
            // of `out` directly via deliver().
            let spill = out.len().min(self.pending_rx.len());
            for slot in out.iter_mut().take(spill) {
                *slot = self.pending_rx.pop_front().expect("bounded by queue len");
            }
            self.out_ptr = out.as_mut_ptr();
            self.out_cap = out.len();
            self.out_len = spill;
            let reaped = self.reap_and_process();
            let n = self.out_len;
            self.out_ptr = std::ptr::null_mut();
            self.out_cap = 0;
            self.out_len = 0;
            reaped?;
            if let Some(k) = self.broken {
                return Err(io::Error::from(k));
            }
            if n == 0 {
                // Idle poll: flush staged re-arms so the receive pool
                // stays armed even when no send traffic carries them.
                self.flush(0)?;
            } else {
                self.stats.recv_calls += 1;
                self.stats.recv_frames += n as u64;
            }
            Ok(n)
        }

        fn send_batch(&mut self, frames: &[Frame]) -> io::Result<()> {
            if frames.is_empty() {
                return Ok(());
            }
            if let Some(k) = self.broken {
                return Err(io::Error::from(k));
            }
            // Reclaim completed send slots (and pick up any received
            // frames) before staging the burst.
            self.reap_and_process()?;
            for f in frames {
                self.stage_send(f)?;
            }
            // One enter for the whole burst — response SQEs plus every
            // receive re-arm staged since the last poll.
            self.flush(0)
        }

        fn max_batch(&self) -> usize {
            MAX_BATCH
        }

        fn label(&self) -> &'static str {
            match self.tier {
                Tier::Multishot => "uring:multishot",
                Tier::Oneshot => "uring:recvmsg",
                Tier::Fixed => "uring:fixed",
                Tier::Plain => "uring:rw",
            }
        }

        fn stats(&self) -> TransportStats {
            let mut s = self.stats;
            s.enter_calls = self.ring.enter_calls;
            s
        }
    }

    impl Drop for IoUringTransport {
        fn drop(&mut self) {
            self.draining = true;
            let drained = self.cancel_and_drain().is_ok() && self.in_flight == 0;
            if !drained {
                // The kernel may still write these buffers while the
                // ring tears down; leaking them is the only safe exit
                // (registered regions stay pinned by the dying ring).
                std::mem::forget(std::mem::take(&mut self.recv_slots));
                std::mem::forget(std::mem::take(&mut self.send_slots));
                if let Some(b) = self.bufring.take() {
                    b.leak();
                }
                if let Some(r) = self.region.take() {
                    std::mem::forget(r);
                }
                if let Some(h) = self.ms_hdr.take() {
                    std::mem::forget(h);
                }
            }
        }
    }

    /// Builds the process-wide [`UringCaps`]: setup attempt, opcode
    /// probe, then a live loopback round trip through each tier.
    pub(super) fn compute_caps() -> UringCaps {
        let unavailable = |reason: String| UringCaps {
            available: false,
            multishot: false,
            fixed: false,
            reason,
        };
        // 1. Can we create a ring at all? (seccomp / ancient kernel)
        let ring = match Ring::new(8, 32) {
            Ok(r) => r,
            Err(e) => {
                return unavailable(format!(
                    "io_uring_setup failed: {e} (seccomp filter or kernel < 5.1?)"
                ))
            }
        };
        // 2. Which opcodes does this kernel support?
        let mut op_supported = [false; 64];
        let mut probe_hdr: sys::ProbeHdr = {
            // SAFETY: ProbeHdr is plain-old-data; the kernel fills it in.
            unsafe { std::mem::zeroed() }
        };
        let probe_ok = ring
            .register(
                sys::IORING_REGISTER_PROBE,
                &mut probe_hdr as *mut sys::ProbeHdr as *const u8,
                64,
            )
            .is_ok();
        if probe_ok {
            for op in probe_hdr.ops.iter().take(probe_hdr.ops_len as usize) {
                if (op.flags & sys::IO_URING_OP_SUPPORTED) != 0 && (op.op as usize) < 64 {
                    op_supported[op.op as usize] = true;
                }
            }
        }
        drop(ring);
        if probe_ok
            && !(op_supported[sys::IORING_OP_RECVMSG as usize]
                && op_supported[sys::IORING_OP_SENDMSG as usize])
        {
            return unavailable("kernel io_uring lacks RECVMSG/SENDMSG opcodes".to_string());
        }
        // 3. Live self-tests: a tier only counts if a real datagram
        // round-tripped through it on loopback.
        let oneshot = match server_self_test(UringMode::Oneshot) {
            Ok(()) => true,
            Err(e) => return unavailable(format!("oneshot RECVMSG self-test failed: {e}")),
        };
        let _ = oneshot;
        let multishot = server_self_test(UringMode::Multishot).is_ok();
        let fixed = probe_ok
            && op_supported[sys::IORING_OP_READ_FIXED as usize]
            && op_supported[sys::IORING_OP_WRITE_FIXED as usize]
            && connected_self_test(UringMode::Fixed).is_ok();
        UringCaps { available: true, multishot, fixed, reason: "ok".to_string() }
    }

    /// Round-trips two datagrams through a server-tier transport and one
    /// response back out of it.
    fn server_self_test(mode: UringMode) -> io::Result<()> {
        let srv_sock = UdpSocket::bind("127.0.0.1:0")?;
        let srv_addr = srv_sock.local_addr()?;
        let mut t = IoUringTransport::server_with(
            srv_sock,
            UringConfig { mode, recv_pool: 8, send_pool: 8 },
        )?;
        let client = UdpSocket::bind("127.0.0.1:0")?;
        let client_addr = client.local_addr()?;
        client.send_to(b"probe-a", srv_addr)?;
        client.send_to(b"probe-b", srv_addr)?;
        let mut out = vec![Frame::empty(); 8];
        let mut got = 0usize;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while got < 2 {
            let n = t.recv_batch(&mut out)?;
            for f in out.iter().take(n) {
                if f.addr != client_addr {
                    return Err(io::Error::other(format!(
                        "source address decoded as {} instead of {client_addr}",
                        f.addr
                    )));
                }
                if !f.payload().starts_with(b"probe-") {
                    return Err(io::Error::other("payload corrupted in transit"));
                }
            }
            got += n;
            if n == 0 {
                if std::time::Instant::now() > deadline {
                    return Err(io::ErrorKind::TimedOut.into());
                }
                std::thread::yield_now();
            }
        }
        // Exercise the tx path too.
        t.send_batch(&[Frame::new(b"pong", client_addr)])?;
        client.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
        let mut buf = [0u8; 16];
        let (n, _) = client.recv_from(&mut buf)?;
        if &buf[..n] != b"pong" {
            return Err(io::Error::other("response payload corrupted"));
        }
        Ok(())
    }

    /// Round-trips a datagram each way through a connected-tier transport.
    fn connected_self_test(mode: UringMode) -> io::Result<()> {
        let a = UdpSocket::bind("127.0.0.1:0")?;
        let b = UdpSocket::bind("127.0.0.1:0")?;
        let b_addr = b.local_addr()?;
        a.connect(b_addr)?;
        b.connect(a.local_addr()?)?;
        let mut t = IoUringTransport::connected_with(
            a,
            UringConfig { mode, recv_pool: 8, send_pool: 8 },
        )?;
        b.send(b"ping")?;
        let mut out = vec![Frame::empty(); 8];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            let n = t.recv_batch(&mut out)?;
            if n > 0 {
                if out[0].payload() != b"ping" || out[0].addr != b_addr {
                    return Err(io::Error::other("connected receive corrupted"));
                }
                break;
            }
            if std::time::Instant::now() > deadline {
                return Err(io::ErrorKind::TimedOut.into());
            }
            std::thread::yield_now();
        }
        t.send_batch(&[Frame::new(b"pong", b_addr)])?;
        b.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
        let mut buf = [0u8; 16];
        let n = b.recv(&mut buf)?;
        if &buf[..n] != b"pong" {
            return Err(io::Error::other("connected response corrupted"));
        }
        Ok(())
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::transport::{Frame, Transport, MAX_FRAME};
    use std::net::UdpSocket;
    use std::time::{Duration, Instant};

    /// Every test prints the probe verdict so a skipped environment is
    /// loud in `cargo test -- --nocapture` and CI logs.
    fn caps_or_skip() -> Option<&'static UringCaps> {
        let caps = probe();
        eprintln!("{}", caps.summary());
        caps.available.then_some(caps)
    }

    fn recv_all(t: &mut IoUringTransport, n: usize) -> Vec<Frame> {
        let mut out = vec![Frame::empty(); MAX_BATCH];
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < n {
            let k = t.recv_batch(&mut out).expect("recv");
            got.extend_from_slice(&out[..k]);
            if k == 0 {
                assert!(Instant::now() < deadline, "timed out at {}", got.len());
                std::thread::yield_now();
            }
        }
        got
    }

    fn server(mode: UringMode) -> IoUringTransport {
        let s = UdpSocket::bind("127.0.0.1:0").expect("bind");
        IoUringTransport::server_with(
            s,
            UringConfig { mode, ..UringConfig::default() },
        )
        .expect("server transport")
    }

    #[test]
    fn probe_is_cached_and_reports() {
        let a = probe();
        let b = probe();
        assert!(std::ptr::eq(a, b), "probe result must be cached");
        eprintln!("{}", a.summary());
        assert!(!a.reason.is_empty());
    }

    #[test]
    fn multishot_server_round_trip() {
        let Some(caps) = caps_or_skip() else { return };
        if !caps.multishot {
            eprintln!("skipping: multishot tier not supported here");
            return;
        }
        let mut t = server(UringMode::Multishot);
        assert_eq!(t.label(), "uring:multishot");
        let dst = t.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        let n = 200usize; // > recv_pool: exercises buffer recycling
        for i in 0..n {
            client.send_to(&(i as u64).to_le_bytes(), dst).unwrap();
        }
        let got = recv_all(&mut t, n);
        let mut seen: Vec<u64> =
            got.iter().map(|f| u64::from_le_bytes(f.payload().try_into().unwrap())).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
        let s = t.stats();
        assert_eq!(s.recv_frames, n as u64);
        assert!(
            s.recv_calls <= s.recv_frames,
            "reap passes can't outnumber frames delivered"
        );
    }

    #[test]
    fn oneshot_server_round_trip_and_reply() {
        let Some(_) = caps_or_skip() else { return };
        let mut t = server(UringMode::Oneshot);
        assert_eq!(t.label(), "uring:recvmsg");
        let dst = t.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        let client_addr = client.local_addr().unwrap();
        for i in 0..100u64 {
            client.send_to(&i.to_le_bytes(), dst).unwrap();
        }
        let got = recv_all(&mut t, 100);
        assert!(got.iter().all(|f| f.addr == client_addr));
        // Reply path: one burst, one enter.
        let replies: Vec<Frame> =
            (0..10u64).map(|i| Frame::new(&i.to_le_bytes(), client_addr)).collect();
        let enters_before = t.stats().enter_calls;
        t.send_batch(&replies).expect("send burst");
        let s = t.stats();
        assert_eq!(s.send_frames, 10);
        assert_eq!(
            s.enter_calls - enters_before,
            1,
            "a response burst must coalesce into one io_uring_enter"
        );
        client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut buf = [0u8; MAX_FRAME];
        for _ in 0..10 {
            client.recv_from(&mut buf).expect("reply arrives");
        }
    }

    #[test]
    fn receives_cost_no_syscall_once_armed() {
        let Some(_) = caps_or_skip() else { return };
        let mut t = server(UringMode::Oneshot);
        let dst = t.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        // Drain the (already armed) pool once so any startup flushes
        // are behind us.
        let mut out = vec![Frame::empty(); MAX_BATCH];
        let _ = t.recv_batch(&mut out).unwrap();
        let enters_before = t.stats().enter_calls;
        for i in 0..8u64 {
            client.send_to(&i.to_le_bytes(), dst).unwrap();
        }
        let got = recv_all(&mut t, 8);
        assert_eq!(got.len(), 8);
        // The loopback sender posted our CQEs; reaping them is pure
        // shared-memory reads. Re-arms are staged but only flushed on an
        // idle poll, so at most the trailing empty polls entered.
        let enters_after = t.stats().enter_calls;
        assert!(
            enters_after - enters_before <= got.len() as u64,
            "receive path entered the kernel {} times for 8 frames",
            enters_after - enters_before,
        );
    }

    #[test]
    fn connected_fixed_round_trip() {
        let Some(caps) = caps_or_skip() else { return };
        if !caps.fixed {
            eprintln!("skipping: fixed-buffer tier not supported here");
            return;
        }
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b_addr = b.local_addr().unwrap();
        a.connect(b_addr).unwrap();
        b.connect(a.local_addr().unwrap()).unwrap();
        let mut t = IoUringTransport::connected(a).unwrap();
        assert_eq!(t.label(), "uring:fixed");
        for i in 0..50u64 {
            b.send(&i.to_le_bytes()).unwrap();
        }
        let got = recv_all(&mut t, 50);
        assert!(got.iter().all(|f| f.addr == b_addr), "peer address attached");
        let frames: Vec<Frame> =
            (0..50u64).map(|i| Frame::new(&i.to_le_bytes(), b_addr)).collect();
        t.send_batch(&frames).unwrap();
        b.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut buf = [0u8; MAX_FRAME];
        for _ in 0..50 {
            b.recv(&mut buf).expect("echoed frame");
        }
        let s = t.stats();
        assert_eq!((s.recv_frames, s.send_frames), (50, 50));
    }

    #[test]
    fn connected_plain_round_trip() {
        let Some(_) = caps_or_skip() else { return };
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b_addr = b.local_addr().unwrap();
        a.connect(b_addr).unwrap();
        b.connect(a.local_addr().unwrap()).unwrap();
        let mut t = IoUringTransport::connected_with(
            a,
            UringConfig { mode: UringMode::Plain, ..UringConfig::default() },
        )
        .unwrap();
        assert_eq!(t.label(), "uring:rw");
        b.send(b"hello").unwrap();
        let got = recv_all(&mut t, 1);
        assert_eq!(got[0].payload(), b"hello");
    }

    #[test]
    fn send_bursts_larger_than_the_pool_reclaim_slots() {
        let Some(_) = caps_or_skip() else { return };
        let srv = UdpSocket::bind("127.0.0.1:0").unwrap();
        let dst_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let dst = dst_sock.local_addr().unwrap();
        let mut t = IoUringTransport::server_with(
            srv,
            UringConfig { mode: UringMode::Oneshot, recv_pool: 4, send_pool: 4 },
        )
        .unwrap();
        let n = 64usize; // 16x the send pool
        let frames: Vec<Frame> =
            (0..n).map(|i| Frame::new(&(i as u64).to_le_bytes(), dst)).collect();
        t.send_batch(&frames).expect("send with slot reclaim");
        assert_eq!(t.stats().send_frames, n as u64);
        dst_sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut buf = [0u8; MAX_FRAME];
        for _ in 0..n {
            dst_sock.recv_from(&mut buf).expect("frame delivered");
        }
    }

    #[test]
    fn oversized_datagrams_truncate_to_max_frame() {
        let Some(caps) = caps_or_skip() else { return };
        for mode in [UringMode::Oneshot, UringMode::Multishot] {
            if mode == UringMode::Multishot && !caps.multishot {
                continue;
            }
            let mut t = server(mode);
            let dst = t.local_addr().unwrap();
            let client = UdpSocket::bind("127.0.0.1:0").unwrap();
            let big = [0xA5u8; 2 * MAX_FRAME];
            client.send_to(&big, dst).unwrap();
            let got = recv_all(&mut t, 1);
            assert_eq!(got[0].len as usize, MAX_FRAME, "{:?} truncates", mode);
            assert!(got[0].payload().iter().all(|&b| b == 0xA5));
        }
    }

    #[test]
    fn empty_batches_are_noops() {
        let Some(_) = caps_or_skip() else { return };
        let mut t = server(UringMode::Oneshot);
        assert_eq!(t.recv_batch(&mut []).unwrap(), 0);
        t.send_batch(&[]).unwrap();
        let s = t.stats();
        assert_eq!(
            (s.recv_calls, s.recv_frames, s.send_calls, s.send_frames),
            (0, 0, 0, 0),
            "no frames moved, no calls counted"
        );
        let mut out = vec![Frame::empty(); 4];
        assert_eq!(t.recv_batch(&mut out).unwrap(), 0, "idle poll returns 0");
    }

    #[test]
    fn achieved_buffer_sizes_land_in_stats() {
        let Some(_) = caps_or_skip() else { return };
        let s = UdpSocket::bind("127.0.0.1:0").unwrap();
        crate::transport::set_socket_buffers(&s, 1 << 20).unwrap();
        let t = IoUringTransport::server_with(
            s,
            UringConfig { mode: UringMode::Oneshot, ..UringConfig::default() },
        )
        .unwrap();
        assert!(t.stats().rcvbuf_bytes > 0);
        assert!(t.stats().sndbuf_bytes > 0);
    }

    #[test]
    fn drop_with_inflight_receives_does_not_hang() {
        let Some(caps) = caps_or_skip() else { return };
        // A freshly armed server has recv_pool ops in flight and no
        // traffic; drop must cancel + drain within its deadline.
        let start = Instant::now();
        for mode in [UringMode::Oneshot, UringMode::Multishot] {
            if mode == UringMode::Multishot && !caps.multishot {
                continue;
            }
            let t = server(mode);
            drop(t);
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown drain took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn server_modes_reject_connected_modes_and_vice_versa() {
        let s = UdpSocket::bind("127.0.0.1:0").unwrap();
        let err = IoUringTransport::server_with(
            s,
            UringConfig { mode: UringMode::Fixed, ..UringConfig::default() },
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        // Unconnected socket can't build a connected transport at all.
        let s = UdpSocket::bind("127.0.0.1:0").unwrap();
        assert!(IoUringTransport::connected(s).is_err());
    }
}
