//! The dispatcher thread (§4 "Dispatcher").
//!
//! Performs *only* job load balancing: it never parses requests for
//! scheduling hints and never schedules quanta. It drains the submit
//! channel in bursts — blocking for the first request, then taking up to
//! [`crate::ServerConfig::dispatch_burst`] more without blocking — takes
//! *one* load snapshot per burst (maintained incrementally as picks
//! assign), and pushes each worker's share of the burst as one ring
//! sub-batch (one Release publish per worker per burst). A full ring is
//! backpressure: the dispatcher *bans* that worker for the retry round
//! and re-picks the leftovers among the other workers
//! ([`Dispatcher::pick_excluding`]); only when every ring is full does it
//! yield, re-snapshot, and start over with a clean mask. The per-item
//! costs of the old pipeline — a blocking recv, an n-worker atomic
//! snapshot, and an Acquire/Release pair per request — are all amortized
//! over the burst. `RingAuditLog::on_forward` stays per-item, so the
//! FIFO audit contract is unchanged.
//!
//! The dispatcher is also phase 1 of the shutdown drain protocol (see
//! DESIGN.md): it exits only after every request it will ever forward is
//! in a ring, then sets `dispatcher_done` — the signal workers need
//! before they may even consider exiting. On an aborted teardown
//! ([`crate::TinyQuanta`] dropped without `shutdown`) it stops
//! forwarding and *counts* the remainder as dropped instead of pushing
//! into rings whose workers may never drain them — conservation then
//! balances as `submitted = completed + dropped(shutdown_abort)`.

use crate::ring::Producer;
use crate::server::{RtRequest, ServerConfig, ShutdownSignal};
use crossbeam::channel::Receiver;
use crossbeam::queue::ArrayQueue;
use std::sync::Arc;
use tq_audit::RingAuditLog;
use tq_core::counters::{DispatcherLedger, SharedCounters};
use tq_core::policy::{Dispatcher, WorkerLoad};

/// Counters the dispatcher reports at exit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DispatcherStats {
    /// Requests forwarded to workers.
    pub forwarded: u64,
    /// Push retries due to full rings (backpressure events): one per
    /// request per retry round it was left over in.
    pub ring_full_retries: u64,
    /// Requests deliberately not forwarded because the server was torn
    /// down (dropped) before a clean shutdown — the named drop bucket
    /// that keeps conservation balanced on the abort path.
    pub dropped_on_abort: u64,
    /// Bursts drained from the submit channel (`forwarded / bursts` is
    /// the mean burst size actually achieved).
    pub bursts: u64,
    /// Wall time spent inside burst processing — snapshot, picks, ring
    /// pushes, and any backpressure retries — excluding blocking waits
    /// for arrivals. `busy_nanos / forwarded` is the dispatch cost per
    /// request.
    pub busy_nanos: u64,
}

impl DispatcherStats {
    /// Mean dispatch cost per forwarded request, in nanoseconds.
    pub fn ns_per_request(&self) -> f64 {
        if self.forwarded == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / self.forwarded as f64
        }
    }
}

/// The dispatcher's outbound path: private SPSC rings, or the shared
/// stealable queues of work-stealing mode.
pub(crate) enum DispatchTx {
    /// One private ring per worker.
    Spsc(Vec<Producer<RtRequest>>),
    /// One stealable MPMC queue per worker.
    Shared(Vec<Arc<ArrayQueue<RtRequest>>>),
}

impl DispatchTx {
    /// Pushes a prefix of `items` to `worker`'s queue, returning how many
    /// were accepted. On the SPSC ring the burst costs one Acquire
    /// refresh (at most) and one Release publish; the shared MPMC queue
    /// has no batched protocol, so it degrades to per-item pushes.
    fn push_batch(&self, worker: usize, items: &[RtRequest]) -> usize {
        match self {
            DispatchTx::Spsc(rings) => rings[worker].push_batch_copy(items),
            DispatchTx::Shared(queues) => {
                for (i, &req) in items.iter().enumerate() {
                    if queues[worker].push(req).is_err() {
                        return i;
                    }
                }
                items.len()
            }
        }
    }
}

impl std::fmt::Debug for DispatchTx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchTx::Spsc(r) => write!(f, "DispatchTx::Spsc({})", r.len()),
            DispatchTx::Shared(q) => write!(f, "DispatchTx::Shared({})", q.len()),
        }
    }
}

/// Spawns the dispatcher thread. It exits once the submit channel
/// disconnects and every received request is either in a ring or counted
/// as dropped (abort path); only then does it set `dispatcher_done`,
/// opening phase 2 of the drain protocol for the workers.
pub(crate) fn spawn(
    config: &ServerConfig,
    rx: Receiver<RtRequest>,
    rings: DispatchTx,
    counters: Arc<Vec<SharedCounters>>,
    signal: Arc<ShutdownSignal>,
    audit: Option<Arc<RingAuditLog>>,
) -> std::thread::JoinHandle<DispatcherStats> {
    let policy = config.dispatch;
    let n_workers = config.workers;
    let seed = config.seed;
    let burst_max = config.dispatch_burst.max(1);
    std::thread::Builder::new()
        .name("tq-dispatcher".into())
        .spawn(move || {
            run_dispatcher(
                policy, n_workers, seed, burst_max, rx, rings, &counters, &signal, audit,
            )
        })
        .expect("spawn dispatcher thread")
}

#[allow(clippy::too_many_arguments)]
fn run_dispatcher(
    policy: tq_core::policy::DispatchPolicy,
    n_workers: usize,
    seed: u64,
    burst_max: usize,
    rx: Receiver<RtRequest>,
    rings: DispatchTx,
    counters: &[SharedCounters],
    signal: &ShutdownSignal,
    audit: Option<Arc<RingAuditLog>>,
) -> DispatcherStats {
    let mut dispatcher = Dispatcher::new(policy, n_workers, seed);
    let mut ledger = DispatcherLedger::new(n_workers);
    let mut loads: Vec<WorkerLoad> = Vec::with_capacity(n_workers);
    let mut stats = DispatcherStats::default();
    let mut batch: Vec<RtRequest> = Vec::with_capacity(burst_max);
    let mut per_worker: Vec<Vec<RtRequest>> = (0..n_workers).map(|_| Vec::new()).collect();
    // Only the first 64 workers can be banned on retry (a `u64` mask);
    // pick_excluding treats higher indices as always allowed, so rings
    // beyond that merely lose the no-spin guarantee, not correctness.
    let bannable: u64 = if n_workers >= 64 {
        u64::MAX
    } else {
        (1u64 << n_workers) - 1
    };
    // Blocking recv: returns Err only when every sender is gone and the
    // channel is drained — the shutdown signal.
    'recv: while let Ok(first) = rx.recv() {
        batch.clear();
        batch.push(first);
        while batch.len() < burst_max {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        if signal.abort_requested() {
            // Aborted teardown: drain the channel, accounting every
            // undelivered request by name.
            stats.dropped_on_abort += batch.len() as u64;
            continue 'recv;
        }
        let burst_started = std::time::Instant::now();
        stats.bursts += 1;
        // One snapshot per burst; each pick bumps its target's queued
        // count so later picks in the burst see the earlier assignments.
        ledger.snapshot(counters, &mut loads);
        for req in batch.drain(..) {
            let w = dispatcher.pick(&loads, flow_hash(req.id.0));
            // Wrapping, like the snapshot itself: in stealing mode a
            // worker that stole more than it was assigned reads as a huge
            // wrapped queue length, which JSQ naturally avoids.
            loads[w].queued_jobs = loads[w].queued_jobs.wrapping_add(1);
            per_worker[w].push(req);
        }
        // Push each worker's sub-batch. Rings that reject part of their
        // batch are banned for the retry round and their leftovers
        // re-picked among the other workers — the doc contract ("the
        // dispatcher re-picks among the other workers"); pre-fix this
        // re-picked with no exclusion and could spin on the same full
        // ring forever under deterministic policies.
        loop {
            let mut banned: u64 = 0;
            let mut leftover = 0u64;
            for (w, sub) in per_worker.iter_mut().enumerate() {
                if sub.is_empty() {
                    continue;
                }
                let k = rings.push_batch(w, sub);
                if let Some(log) = &audit {
                    // Per-item forward log: the FIFO audit contract is
                    // per-request, batching notwithstanding.
                    for req in &sub[..k] {
                        log.on_forward(w, req.id.0);
                    }
                }
                ledger.on_assigned_n(w, k as u64);
                stats.forwarded += k as u64;
                sub.drain(..k);
                if !sub.is_empty() {
                    leftover += sub.len() as u64;
                    if w < 64 {
                        banned |= 1u64 << w;
                    }
                }
            }
            if leftover == 0 {
                break;
            }
            if signal.abort_requested() {
                // Workers may stop draining at any point now; retrying
                // could spin forever against permanently-full rings.
                // Account and move on.
                stats.dropped_on_abort += leftover;
                for sub in per_worker.iter_mut() {
                    sub.clear();
                }
                stats.busy_nanos += burst_started.elapsed().as_nanos() as u64;
                continue 'recv;
            }
            stats.ring_full_retries += leftover;
            if banned == bannable {
                // Every (bannable) ring is full: nothing to re-pick
                // toward. Yield so workers can drain, then retry the
                // same assignment against fresh ring space.
                std::thread::yield_now();
                ledger.snapshot(counters, &mut loads);
                continue;
            }
            // Re-pick the leftovers among the non-banned workers, on a
            // fresh snapshot (the original is stale by one push round).
            ledger.snapshot(counters, &mut loads);
            batch.clear();
            for sub in per_worker.iter_mut() {
                batch.append(sub);
            }
            for req in batch.drain(..) {
                let w = dispatcher.pick_excluding(&loads, flow_hash(req.id.0), banned);
                loads[w].queued_jobs = loads[w].queued_jobs.wrapping_add(1);
                per_worker[w].push(req);
            }
        }
        stats.busy_nanos += burst_started.elapsed().as_nanos() as u64;
    }
    // Phase 1 complete: nothing will ever be pushed into a ring again.
    // Workers may now exit once their queues are empty.
    signal.set_dispatcher_done();
    stats
}

/// Stand-in for the NIC's RSS hash of the request's flow.
fn flow_hash(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
