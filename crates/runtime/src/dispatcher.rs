//! The dispatcher thread (§4 "Dispatcher").
//!
//! Performs *only* job load balancing: it never parses requests for
//! scheduling hints and never schedules quanta. Per request it snapshots
//! each worker's load from the shared counters (unfinished jobs for JSQ,
//! current serviced quanta for MSQ tie-breaking) and pushes the request
//! into the chosen worker's ring. A full ring is backpressure: the
//! dispatcher re-picks among the other workers and retries.
//!
//! The dispatcher is also phase 1 of the shutdown drain protocol (see
//! DESIGN.md): it exits only after every request it will ever forward is
//! in a ring, then sets `dispatcher_done` — the signal workers need
//! before they may even consider exiting. On an aborted teardown
//! ([`crate::TinyQuanta`] dropped without `shutdown`) it stops
//! forwarding and *counts* the remainder as dropped instead of pushing
//! into rings whose workers may never drain them — conservation then
//! balances as `submitted = completed + dropped(shutdown_abort)`.

use crate::ring::Producer;
use crate::server::{RtRequest, ServerConfig, ShutdownSignal};
use crossbeam::channel::Receiver;
use crossbeam::queue::ArrayQueue;
use std::sync::Arc;
use tq_audit::RingAuditLog;
use tq_core::counters::{DispatcherLedger, SharedCounters};
use tq_core::policy::{Dispatcher, WorkerLoad};

/// Counters the dispatcher reports at exit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DispatcherStats {
    /// Requests forwarded to workers.
    pub forwarded: u64,
    /// Push retries due to full rings (backpressure events).
    pub ring_full_retries: u64,
    /// Requests deliberately not forwarded because the server was torn
    /// down (dropped) before a clean shutdown — the named drop bucket
    /// that keeps conservation balanced on the abort path.
    pub dropped_on_abort: u64,
}

/// The dispatcher's outbound path: private SPSC rings, or the shared
/// stealable queues of work-stealing mode.
pub(crate) enum DispatchTx {
    /// One private ring per worker.
    Spsc(Vec<Producer<RtRequest>>),
    /// One stealable MPMC queue per worker.
    Shared(Vec<Arc<ArrayQueue<RtRequest>>>),
}

impl DispatchTx {
    fn push(&self, worker: usize, req: RtRequest) -> Result<(), RtRequest> {
        match self {
            DispatchTx::Spsc(rings) => rings[worker].push(req),
            DispatchTx::Shared(queues) => queues[worker].push(req),
        }
    }
}

impl std::fmt::Debug for DispatchTx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchTx::Spsc(r) => write!(f, "DispatchTx::Spsc({})", r.len()),
            DispatchTx::Shared(q) => write!(f, "DispatchTx::Shared({})", q.len()),
        }
    }
}

/// Spawns the dispatcher thread. It exits once the submit channel
/// disconnects and every received request is either in a ring or counted
/// as dropped (abort path); only then does it set `dispatcher_done`,
/// opening phase 2 of the drain protocol for the workers.
pub(crate) fn spawn(
    config: &ServerConfig,
    rx: Receiver<RtRequest>,
    rings: DispatchTx,
    counters: Arc<Vec<SharedCounters>>,
    signal: Arc<ShutdownSignal>,
    audit: Option<Arc<RingAuditLog>>,
) -> std::thread::JoinHandle<DispatcherStats> {
    let policy = config.dispatch;
    let n_workers = config.workers;
    let seed = config.seed;
    std::thread::Builder::new()
        .name("tq-dispatcher".into())
        .spawn(move || {
            let mut dispatcher = Dispatcher::new(policy, n_workers, seed);
            let mut ledger = DispatcherLedger::new(n_workers);
            let mut loads: Vec<WorkerLoad> = Vec::with_capacity(n_workers);
            let mut stats = DispatcherStats::default();
            // Blocking recv: returns Err only when every sender is gone
            // and the channel is drained — the shutdown signal.
            'recv: while let Ok(mut req) = rx.recv() {
                if signal.abort_requested() {
                    // Aborted teardown: drain the channel, accounting
                    // every undelivered request by name.
                    stats.dropped_on_abort += 1;
                    continue 'recv;
                }
                let id = req.id.0;
                loop {
                    ledger.snapshot(&counters, &mut loads);
                    let w = dispatcher.pick(&loads, flow_hash(id));
                    match rings.push(w, req) {
                        Ok(()) => {
                            if let Some(log) = &audit {
                                log.on_forward(w, id);
                            }
                            ledger.on_assigned(w);
                            stats.forwarded += 1;
                            break;
                        }
                        Err(back) => {
                            if signal.abort_requested() {
                                // Workers may stop draining at any point
                                // now; retrying could spin forever against
                                // permanently-full rings. Account and move
                                // on.
                                stats.dropped_on_abort += 1;
                                continue 'recv;
                            }
                            req = back;
                            stats.ring_full_retries += 1;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            // Phase 1 complete: nothing will ever be pushed into a ring
            // again. Workers may now exit once their queues are empty.
            signal.set_dispatcher_done();
            stats
        })
        .expect("spawn dispatcher thread")
}

/// Stand-in for the NIC's RSS hash of the request's flow.
fn flow_hash(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
