//! The per-core scheduler loop (§4 "Workers").
//!
//! Each worker thread owns a set of task slots (the pre-allocated
//! coroutines), a PS rotation over the busy ones, and the consumer end of
//! its dispatch ring. Per iteration it (i) admits pending requests into
//! idle slots, (ii) resumes the rotation head for one quantum, (iii) on
//! completion sends the response directly (bypassing the dispatcher) and
//! updates the shared counters the dispatcher's JSQ/MSQ reads.

use crate::clock::TscClock;
use crate::job::{Job, JobStatus, QuantumCtx};
use crate::ring::Consumer;
use crate::server::{Completion, JobFactory, RtRequest, ServerConfig};
use crossbeam::channel::Sender;
use crossbeam::queue::ArrayQueue;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tq_core::counters::SharedCounters;
use tq_core::policy::{PsQueue, WorkerPolicy};
use tq_core::Cycles;

/// Handle to a spawned worker thread.
#[derive(Debug)]
pub struct WorkerHandle {
    thread: std::thread::JoinHandle<WorkerStats>,
}

impl WorkerHandle {
    /// Joins the worker, returning its statistics.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread panicked.
    pub fn join(self) -> WorkerStats {
        self.thread.join().expect("worker panicked")
    }
}

/// Counters a worker reports at exit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs completed.
    pub completed: u64,
    /// Quanta executed.
    pub quanta: u64,
    /// Scheduler-loop iterations that found nothing to run.
    pub idle_iterations: u64,
    /// Jobs stolen from siblings (work-stealing mode).
    pub steals: u64,
    /// High-water mark of the worker's dispatch ring (requests waiting
    /// to be admitted into task slots), sampled at each admit pass —
    /// the live system's analogue of the simulators' queue depth.
    pub max_ring_occupancy: u64,
}

struct Task {
    job: Box<dyn Job>,
    req: RtRequest,
    quanta: u64,
}

/// A worker's inbound job source: its private SPSC ring (TQ's default),
/// or — in work-stealing mode (the Caladan configuration) — a shared
/// MPMC queue per worker from which idle siblings may steal.
pub(crate) enum WorkerRx {
    /// Private lock-free ring (dispatcher is the sole producer).
    Spsc(Consumer<RtRequest>),
    /// Stealable per-worker queues; `index` is this worker's own.
    Shared {
        index: usize,
        queues: Vec<Arc<ArrayQueue<RtRequest>>>,
    },
}

impl std::fmt::Debug for WorkerRx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerRx::Spsc(_) => f.write_str("WorkerRx::Spsc"),
            WorkerRx::Shared { index, .. } => {
                write!(f, "WorkerRx::Shared {{ index: {index} }}")
            }
        }
    }
}

impl WorkerRx {
    /// Pops from this worker's own queue.
    fn pop_local(&self) -> Option<RtRequest> {
        match self {
            WorkerRx::Spsc(c) => c.pop(),
            WorkerRx::Shared { index, queues } => queues[*index].pop(),
        }
    }

    /// Whether this worker's own queue is empty.
    fn local_is_empty(&self) -> bool {
        match self {
            WorkerRx::Spsc(c) => c.is_empty(),
            WorkerRx::Shared { index, queues } => queues[*index].is_empty(),
        }
    }

    /// Requests currently waiting in this worker's own queue.
    fn local_len(&self) -> usize {
        match self {
            WorkerRx::Spsc(c) => c.len(),
            WorkerRx::Shared { index, queues } => queues[*index].len(),
        }
    }

    /// Steals one pending request from the most-loaded sibling (stealing
    /// mode only; `None` otherwise or when every sibling is idle too).
    fn steal(&self) -> Option<RtRequest> {
        let WorkerRx::Shared { index, queues } = self else {
            return None;
        };
        let victim = queues
            .iter()
            .enumerate()
            .filter(|(i, _)| i != index)
            .max_by_key(|(_, q)| q.len())?;
        victim.1.pop()
    }
}

/// Spawns one worker thread.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn(
    index: usize,
    config: &ServerConfig,
    rx: WorkerRx,
    factory: Arc<JobFactory>,
    counters: Arc<Vec<SharedCounters>>,
    completions: Sender<Completion>,
    drain: Arc<AtomicBool>,
    clock: TscClock,
) -> WorkerHandle {
    let slots = config.task_slots;
    let quantum = config.quantum;
    let discipline = config.discipline;
    let thread = std::thread::Builder::new()
        .name(format!("tq-worker-{index}"))
        .spawn(move || {
            run_worker(
                index, slots, quantum, discipline, rx, factory, counters, completions, drain,
                clock,
            )
        })
        .expect("spawn worker thread");
    WorkerHandle { thread }
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    index: usize,
    n_slots: usize,
    quantum: tq_core::Nanos,
    discipline: WorkerPolicy,
    rx: WorkerRx,
    factory: Arc<JobFactory>,
    counters: Arc<Vec<SharedCounters>>,
    completions: Sender<Completion>,
    drain: Arc<AtomicBool>,
    clock: TscClock,
) -> WorkerStats {
    // FCFS never preempts: arm an effectively-infinite deadline.
    let quantum_cycles: Cycles = if discipline.preempts() {
        clock.to_cycles(quantum)
    } else {
        Cycles(u64::MAX / 2)
    };
    let mut ctx = QuantumCtx::new(clock.clone());
    let mut slots: Vec<Option<Task>> = (0..n_slots).map(|_| None).collect();
    let mut free: Vec<usize> = (0..n_slots).rev().collect();
    let mut rotation: PsQueue<usize> = PsQueue::with_capacity(n_slots);
    let mut stats = WorkerStats::default();
    let my_counters = &counters[index];

    loop {
        // Ring high-water mark, sampled before admission drains it.
        stats.max_ring_occupancy = stats.max_ring_occupancy.max(rx.local_len() as u64);
        // Admit pending requests into idle coroutine slots.
        while !free.is_empty() {
            match rx.pop_local() {
                Some(req) => {
                    let slot = free.pop().expect("checked non-empty");
                    let job = factory(&req);
                    slots[slot] = Some(Task {
                        job,
                        req,
                        quanta: 0,
                    });
                    if !matches!(discipline, WorkerPolicy::LeastAttainedService) {
                        rotation.admit(slot);
                    }
                }
                None => break,
            }
        }

        // Pick the next slot per the discipline: the rotation head (PS,
        // FCFS) or the busy task with the least attained service (LAS).
        let next_slot = match discipline {
            WorkerPolicy::ProcessorSharing | WorkerPolicy::Fcfs => rotation.take_next(),
            WorkerPolicy::LeastAttainedService => slots
                .iter()
                .enumerate()
                .filter_map(|(i, t)| t.as_ref().map(|t| (t.quanta, i)))
                .min()
                .map(|(_, i)| i),
        };
        if let Some(slot) = next_slot {
            let task = slots[slot].as_mut().expect("rotation holds busy slots");
            ctx.arm(quantum_cycles);
            let status = task.job.run(&mut ctx);
            task.quanta += 1;
            stats.quanta += 1;
            my_counters.on_quantum();
            match status {
                JobStatus::Yielded => {
                    if !matches!(discipline, WorkerPolicy::LeastAttainedService) {
                        rotation.reenter(slot);
                    }
                }
                JobStatus::Done => {
                    let task = slots[slot].take().expect("just ran it");
                    my_counters.on_finished(task.quanta);
                    stats.completed += 1;
                    let _ = completions.send(Completion {
                        id: task.req.id,
                        class: task.req.class,
                        submitted: task.req.submitted,
                        finished: ctx.clock().wall_nanos(),
                        quanta: task.quanta,
                        worker: index,
                    });
                    free.push(slot);
                }
            }
        } else {
            // Idle: in stealing mode, raid the most-loaded sibling before
            // giving up the core (the Caladan behavior).
            if !free.is_empty() {
                if let Some(req) = rx.steal() {
                    stats.steals += 1;
                    let slot = free.pop().expect("checked non-empty");
                    let job = factory(&req);
                    slots[slot] = Some(Task {
                        job,
                        req,
                        quanta: 0,
                    });
                    if !matches!(discipline, WorkerPolicy::LeastAttainedService) {
                        rotation.admit(slot);
                    }
                    continue;
                }
            }
            stats.idle_iterations += 1;
            if drain.load(Ordering::Acquire) && rx.local_is_empty() {
                return stats;
            }
            // Idle: let other (oversubscribed) threads run.
            std::thread::yield_now();
        }
    }
}
