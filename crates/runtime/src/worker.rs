//! The per-core scheduler loop (§4 "Workers").
//!
//! Each worker thread owns a set of task slots (the pre-allocated
//! coroutines), a PS rotation over the busy ones, and the consumer end of
//! its dispatch ring. Per iteration it (i) admits pending requests into
//! idle slots, (ii) resumes the rotation head for one quantum, (iii) on
//! completion sends the response directly (bypassing the dispatcher) and
//! updates the shared counters the dispatcher's JSQ/MSQ reads.
//!
//! Exit is phase 2 of the drain protocol (DESIGN.md): a worker returns
//! only once the dispatcher has signalled phase 1 (`dispatcher_done` —
//! no queue will ever receive another push) *and* every queue this
//! worker can receive from is empty. In work-stealing mode "every queue"
//! means all siblings' queues too: an idle worker keeps stealing during
//! the drain rather than abandoning work a stalled sibling still holds.

use crate::clock::TscClock;
use crate::job::{Job, JobStatus, QuantumCtx};
use crate::ring::{Consumer, Producer};
use crate::server::{Completion, JobFactory, RtRequest, ServerConfig, ShutdownSignal};
use crossbeam::queue::ArrayQueue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tq_audit::fault::FaultPlan;
use tq_audit::RingAuditLog;
use tq_core::counters::SharedCounters;
use tq_core::policy::{PsQueue, WorkerPolicy};
use tq_core::Cycles;

/// Handle to a spawned worker thread.
#[derive(Debug)]
pub struct WorkerHandle {
    thread: std::thread::JoinHandle<WorkerStats>,
}

impl WorkerHandle {
    /// Joins the worker, returning its statistics.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread panicked.
    pub fn join(self) -> WorkerStats {
        self.thread.join().expect("worker panicked")
    }

    /// Whether the worker thread has returned. Used by the shutdown and
    /// drop paths to drain completion rings *while* joining — a worker's
    /// exit flush can block on a full ring until someone pops.
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }
}

/// Counters a worker reports at exit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs completed.
    pub completed: u64,
    /// Quanta executed.
    pub quanta: u64,
    /// Scheduler-loop iterations that found nothing to run.
    pub idle_iterations: u64,
    /// Jobs stolen from siblings (work-stealing mode).
    pub steals: u64,
    /// High-water mark of the worker's dispatch ring (requests waiting
    /// to be admitted into task slots), sampled at each admit pass —
    /// the live system's analogue of the simulators' queue depth.
    pub max_ring_occupancy: u64,
    /// Scheduler-loop iterations skipped inside an injected stall window.
    pub stalled_iterations: u64,
}

struct Task {
    job: Box<dyn Job>,
    req: RtRequest,
    quanta: u64,
}

/// A worker's inbound job source: its private SPSC ring (TQ's default),
/// or — in work-stealing mode (the Caladan configuration) — a shared
/// MPMC queue per worker from which idle siblings may steal.
pub(crate) enum WorkerRx {
    /// Private lock-free ring (dispatcher is the sole producer).
    Spsc(Consumer<RtRequest>),
    /// Stealable per-worker queues; `index` is this worker's own.
    Shared {
        index: usize,
        queues: Vec<Arc<ArrayQueue<RtRequest>>>,
    },
}

impl std::fmt::Debug for WorkerRx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerRx::Spsc(_) => f.write_str("WorkerRx::Spsc"),
            WorkerRx::Shared { index, .. } => {
                write!(f, "WorkerRx::Shared {{ index: {index} }}")
            }
        }
    }
}

impl WorkerRx {
    /// Pops up to `max` requests from this worker's own queue into `out`
    /// (appending, in FIFO order). On the SPSC ring this is one Acquire
    /// refresh and one Release recycle for the whole burst.
    fn pop_local_batch(&self, out: &mut Vec<RtRequest>, max: usize) -> usize {
        match self {
            WorkerRx::Spsc(c) => c.pop_batch(out, max),
            WorkerRx::Shared { index, queues } => {
                let q = &queues[*index];
                let mut n = 0;
                while n < max {
                    match q.pop() {
                        Some(r) => {
                            out.push(r);
                            n += 1;
                        }
                        None => break,
                    }
                }
                n
            }
        }
    }

    /// Requests currently waiting in this worker's own queue.
    fn local_len(&self) -> usize {
        match self {
            WorkerRx::Spsc(c) => c.len(),
            WorkerRx::Shared { index, queues } => queues[*index].len(),
        }
    }

    /// Whether every queue this worker could still receive work from is
    /// empty — the phase-2 exit condition. In stealing mode that is *all*
    /// queues: a sibling's backlog is this worker's business too (it can
    /// and must steal it during the drain).
    fn all_drained(&self) -> bool {
        match self {
            WorkerRx::Spsc(c) => c.is_empty(),
            WorkerRx::Shared { queues, .. } => queues.iter().all(|q| q.is_empty()),
        }
    }

    /// Steals one pending request from a sibling, preferring the most
    /// loaded one; returns the request and the victim's index (stealing
    /// mode only; `None` when every sibling really is empty).
    fn steal(&self) -> Option<(RtRequest, usize)> {
        let WorkerRx::Shared { index, queues } = self else {
            return None;
        };
        // The preferred victim (longest queue) can race to empty between
        // the length snapshot and the pop. Giving up then idles this core
        // while other siblings still hold work — so on a miss, sweep the
        // remaining siblings before reporting there is nothing to steal.
        if let Some((victim, queue)) = queues
            .iter()
            .enumerate()
            .filter(|(i, q)| i != index && !q.is_empty())
            .max_by_key(|(_, q)| q.len())
        {
            if let Some(req) = queue.pop() {
                return Some((req, victim));
            }
        }
        for (victim, queue) in queues.iter().enumerate() {
            if victim != *index {
                if let Some(req) = queue.pop() {
                    return Some((req, victim));
                }
            }
        }
        None
    }
}

/// Everything a worker thread needs beyond its job source — bundled so
/// the spawn path stays readable as coordination state grows.
struct WorkerCtx {
    index: usize,
    n_slots: usize,
    /// Quantum in nanoseconds, shared with the server facade so the
    /// adaptive controller can republish it mid-run ([`crate::server::
    /// TinyQuanta::set_quantum`]). Workers re-read it (one Relaxed load)
    /// before arming each quantum and only re-derive the cycle deadline
    /// when the value actually changed.
    quantum: Arc<AtomicU64>,
    discipline: WorkerPolicy,
    factory: Arc<JobFactory>,
    counters: Arc<Vec<SharedCounters>>,
    completions: Producer<Completion>,
    signal: Arc<ShutdownSignal>,
    audit: Option<Arc<RingAuditLog>>,
    fault: Option<FaultPlan>,
    clock: TscClock,
    counter_flush_quanta: u64,
    idle_spins: u32,
    idle_yields: u32,
    idle_sleep: std::time::Duration,
}

/// Spawns one worker thread.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn(
    index: usize,
    config: &ServerConfig,
    quantum: Arc<AtomicU64>,
    rx: WorkerRx,
    factory: Arc<JobFactory>,
    counters: Arc<Vec<SharedCounters>>,
    completions: Producer<Completion>,
    signal: Arc<ShutdownSignal>,
    audit: Option<Arc<RingAuditLog>>,
    clock: TscClock,
) -> WorkerHandle {
    // Only plans that mention this worker are carried into its loop: a
    // worker with no windows keeps fault checks off its hot path.
    let fault = config
        .fault
        .as_ref()
        .filter(|p| p.stalls.iter().any(|s| s.worker == index))
        .cloned();
    let ctx = WorkerCtx {
        index,
        n_slots: config.task_slots,
        quantum,
        discipline: config.discipline,
        factory,
        counters,
        completions,
        signal,
        audit,
        fault,
        clock,
        counter_flush_quanta: u64::from(config.counter_flush_quanta.max(1)),
        idle_spins: config.idle_spins,
        idle_yields: config.idle_yields,
        idle_sleep: std::time::Duration::from_nanos(config.idle_sleep.0),
    };
    let thread = std::thread::Builder::new()
        .name(format!("tq-worker-{index}"))
        .spawn(move || run_worker(ctx, rx))
        .expect("spawn worker thread");
    WorkerHandle { thread }
}

/// Worker-local counter deltas, published to the [`SharedCounters`] in
/// batches (bounded staleness: at most `counter_flush_quanta` quanta, and
/// always flushed on idle, before a stall window, and at exit).
#[derive(Default)]
struct PendingCounters {
    quanta: u64,
    finished: u64,
    retired_quanta: u64,
}

impl PendingCounters {
    fn flush(&mut self, shared: &SharedCounters) {
        if self.quanta > 0 {
            shared.add_quanta(self.quanta);
            self.quanta = 0;
        }
        if self.finished > 0 {
            shared.add_finished(self.finished, self.retired_quanta);
            self.finished = 0;
            self.retired_quanta = 0;
        }
    }
}

fn run_worker(w: WorkerCtx, rx: WorkerRx) -> WorkerStats {
    let WorkerCtx {
        index,
        n_slots,
        quantum,
        discipline,
        factory,
        counters,
        completions,
        signal,
        audit,
        fault,
        clock,
        counter_flush_quanta,
        idle_spins,
        idle_yields,
        idle_sleep,
    } = w;
    // FCFS never preempts: arm an effectively-infinite deadline. For
    // preempting disciplines the shared cell is re-read before each arm
    // (the adaptive controller republishes it mid-run); the ns→cycles
    // conversion is cached and redone only on an actual change.
    let mut quantum_nanos = quantum.load(Ordering::Relaxed);
    let mut quantum_cycles: Cycles = if discipline.preempts() {
        clock.to_cycles(tq_core::Nanos(quantum_nanos))
    } else {
        Cycles(u64::MAX / 2)
    };
    let mut ctx = QuantumCtx::new(clock.clone());
    let mut slots: Vec<Option<Task>> = (0..n_slots).map(|_| None).collect();
    let mut free: Vec<usize> = (0..n_slots).rev().collect();
    let mut rotation: PsQueue<usize> = PsQueue::with_capacity(n_slots);
    let mut stats = WorkerStats::default();
    let my_counters = &counters[index];
    let started = clock.wall_nanos();
    // Burst state: requests admitted per pass, completions awaiting
    // publication (never blocks the scheduler loop: overflow beyond the
    // completion ring stays here, mirroring the old unbounded channel),
    // and counter deltas awaiting a flush.
    let mut admit_buf: Vec<RtRequest> = Vec::with_capacity(n_slots);
    let mut done_buf: Vec<Completion> = Vec::new();
    let mut pending = PendingCounters::default();
    // Consecutive idle iterations, for the spin → yield → sleep backoff.
    let mut idle_streak: u32 = 0;

    loop {
        // Injected stall: refuse to admit or run anything inside the
        // window (the live analogue of the OS descheduling this core).
        // Windows are finite, so the shutdown drain always terminates.
        if let Some(plan) = &fault {
            if plan.stalled(index, clock.wall_nanos().saturating_sub(started)) {
                // Publish buffered state before going dark: a stall
                // window models a descheduled core, not lost updates.
                pending.flush(my_counters);
                completions.push_batch(&mut done_buf);
                stats.stalled_iterations += 1;
                std::thread::yield_now();
                continue;
            }
        }
        // Ring high-water mark, sampled before admission drains it.
        stats.max_ring_occupancy = stats.max_ring_occupancy.max(rx.local_len() as u64);
        // Publish any buffered completions (one Release per burst); the
        // un-pushed overflow simply stays buffered for the next pass.
        if !done_buf.is_empty() {
            completions.push_batch(&mut done_buf);
        }
        // Admit pending requests into idle coroutine slots, pulled from
        // the ring in one burst sized to the free slots.
        if !free.is_empty() {
            rx.pop_local_batch(&mut admit_buf, free.len());
            for req in admit_buf.drain(..) {
                if let Some(log) = &audit {
                    log.on_admit(index, req.id.0);
                }
                let slot = free.pop().expect("burst sized to free slots");
                let job = factory(&req);
                slots[slot] = Some(Task {
                    job,
                    req,
                    quanta: 0,
                });
                if !discipline.is_ranked() {
                    rotation.admit(slot);
                }
            }
        }

        // Pick the next slot per the discipline: the rotation head (PS,
        // FCFS), or — for ranked disciplines (LAS, priority, deadline,
        // fair share) — the busy task with the minimum rank, attained
        // service measured in quanta. Slot count is small and fixed, so
        // a scan beats maintaining a heap under preemptive re-ranking.
        let next_slot = if discipline.is_ranked() {
            slots
                .iter()
                .enumerate()
                .filter_map(|(i, t)| {
                    t.as_ref().map(|t| {
                        (
                            discipline.job_rank(t.req.class.0, t.req.submitted, t.quanta),
                            i,
                        )
                    })
                })
                .min()
                .map(|(_, i)| i)
        } else {
            rotation.take_next()
        };
        if let Some(slot) = next_slot {
            idle_streak = 0;
            let task = slots[slot].as_mut().expect("rotation holds busy slots");
            if discipline.preempts() {
                let q = quantum.load(Ordering::Relaxed);
                if q != quantum_nanos {
                    quantum_nanos = q;
                    quantum_cycles = clock.to_cycles(tq_core::Nanos(q));
                }
            }
            ctx.arm(quantum_cycles);
            let status = task.job.run(&mut ctx);
            task.quanta += 1;
            stats.quanta += 1;
            pending.quanta += 1;
            if pending.quanta >= counter_flush_quanta {
                pending.flush(my_counters);
            }
            match status {
                JobStatus::Yielded => {
                    if !discipline.is_ranked() {
                        rotation.reenter(slot);
                    }
                }
                JobStatus::Done => {
                    let task = slots[slot].take().expect("just ran it");
                    pending.finished += 1;
                    pending.retired_quanta += task.quanta;
                    stats.completed += 1;
                    done_buf.push(Completion {
                        id: task.req.id,
                        class: task.req.class,
                        submitted: task.req.submitted,
                        finished: ctx.clock().wall_nanos(),
                        quanta: task.quanta,
                        worker: index,
                    });
                    free.push(slot);
                }
            }
        } else {
            // Idle: in stealing mode, raid the most-loaded sibling before
            // giving up the core (the Caladan behavior).
            if !free.is_empty() {
                if let Some((req, victim)) = rx.steal() {
                    if let Some(log) = &audit {
                        log.on_steal(index, victim, req.id.0);
                    }
                    idle_streak = 0;
                    stats.steals += 1;
                    let slot = free.pop().expect("checked non-empty");
                    let job = factory(&req);
                    slots[slot] = Some(Task {
                        job,
                        req,
                        quanta: 0,
                    });
                    if !discipline.is_ranked() {
                        rotation.admit(slot);
                    }
                    continue;
                }
            }
            stats.idle_iterations += 1;
            // Nothing to run: publish the truth — the dispatcher must not
            // see stale load for an idle worker, and the server may be
            // waiting on buffered completions.
            pending.flush(my_counters);
            if !done_buf.is_empty() {
                completions.push_batch(&mut done_buf);
            }
            // Phase-2 exit: the dispatcher has pushed its last request
            // (phase 1) and every queue this worker could receive from —
            // all siblings' too, in stealing mode — is empty. Checking
            // only the local queue here let stealing-mode workers exit
            // while a sibling's queue still held jobs nobody would run.
            if signal.dispatcher_done() && rx.all_drained() {
                // Exit flush: every buffered completion must reach the
                // ring. The shutdown/drop paths drain concurrently with
                // this join, so a full ring always makes progress.
                while !done_buf.is_empty() {
                    if completions.push_batch(&mut done_buf) == 0 {
                        std::thread::yield_now();
                    }
                }
                return stats;
            }
            // Idle backoff: spin briefly (a request may be nanoseconds
            // away), then yield the core to siblings, then sleep so an
            // oversubscribed host isn't saturated by idle workers.
            idle_streak = idle_streak.saturating_add(1);
            if idle_streak <= idle_spins {
                std::hint::spin_loop();
            } else if idle_streak <= idle_spins.saturating_add(idle_yields) {
                std::thread::yield_now();
            } else {
                std::thread::sleep(idle_sleep);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RtRequest;
    use std::sync::atomic::{AtomicBool, Ordering};
    use tq_core::{ClassId, JobId, Nanos};

    fn req(id: u64) -> RtRequest {
        RtRequest {
            id: JobId(id),
            class: ClassId(0),
            service: Nanos::from_micros(1),
            submitted: Nanos::ZERO,
        }
    }

    fn shared_rx(index: usize, queues: &[Arc<ArrayQueue<RtRequest>>]) -> WorkerRx {
        WorkerRx::Shared {
            index,
            queues: queues.to_vec(),
        }
    }

    #[test]
    fn steal_prefers_longest_sibling_and_reports_victim() {
        let queues: Vec<_> = (0..3)
            .map(|_| Arc::new(ArrayQueue::<RtRequest>::new(8)))
            .collect();
        queues[1].push(req(10)).unwrap();
        queues[2].push(req(20)).unwrap();
        queues[2].push(req(21)).unwrap();
        let rx = shared_rx(0, &queues);
        let (r, victim) = rx.steal().expect("work available");
        assert_eq!(victim, 2, "longest sibling queue should be raided first");
        assert_eq!(r.id.0, 20);
    }

    #[test]
    fn steal_returns_none_only_when_all_siblings_empty() {
        let queues: Vec<_> = (0..2)
            .map(|_| Arc::new(ArrayQueue::<RtRequest>::new(8)))
            .collect();
        let rx = shared_rx(0, &queues);
        assert!(rx.steal().is_none());
        queues[0].push(req(1)).unwrap(); // own queue is not a steal target
        assert!(rx.steal().is_none());
    }

    /// Regression test for the victim-races-to-empty bug: pre-fix,
    /// `steal` snapshotted queue lengths, picked the max, and gave up
    /// entirely if that one pop failed — returning `None` while another
    /// sibling still held work. A flapper thread oscillates queue 2
    /// between empty and length 1 (ties go to the later queue, so the
    /// thief keeps choosing it and keeps losing the race) while queue 1
    /// permanently holds one request; every steal attempt must succeed.
    #[test]
    fn steal_retries_other_victims_when_chosen_queue_races_to_empty() {
        let queues: Vec<_> = (0..3)
            .map(|_| Arc::new(ArrayQueue::<RtRequest>::new(4)))
            .collect();
        queues[1].push(req(1)).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let flap_q = Arc::clone(&queues[2]);
        let flap_stop = Arc::clone(&stop);
        let flapper = std::thread::spawn(move || {
            while !flap_stop.load(Ordering::Relaxed) {
                let _ = flap_q.push(req(99));
                let _ = flap_q.pop();
            }
        });
        let rx = shared_rx(0, &queues);
        for attempt in 0..50_000 {
            match rx.steal() {
                Some((r, victim)) => {
                    // Whatever was stolen, put queue 1's sentinel back so
                    // the invariant (some sibling non-empty) holds.
                    if victim == 1 {
                        queues[1].push(r).unwrap();
                    }
                }
                None => {
                    stop.store(true, Ordering::Relaxed);
                    flapper.join().unwrap();
                    panic!(
                        "steal gave up on attempt {attempt} while queue 1 \
                         still held a request"
                    );
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        flapper.join().unwrap();
    }
}
