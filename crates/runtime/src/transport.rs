//! Batched datagram transport: the socket analogue of the batched
//! dispatch pipeline.
//!
//! The paper's clients "transmit requests … over UDP" (§5.1) into a DPDK
//! NIC that hands the dispatcher *bursts* of frames. A kernel socket has
//! no burst API per syscall — unless you use Linux's `recvmmsg`/
//! `sendmmsg`, which move up to [`MAX_BATCH`] datagrams per syscall. The
//! [`Transport`] trait abstracts exactly that: a nonblocking
//! batch-in/batch-out frame interface, so the serving loop
//! (`crate::net::serve`) amortizes syscall cost over a burst the same
//! way the dispatcher amortizes its snapshot and ring publishes
//! (DESIGN.md "Batched dispatch pipeline").
//!
//! Two implementations:
//!
//! * [`UdpTransport::batched`] — `recvmmsg`/`sendmmsg` on Linux (bound
//!   via a local `extern "C"` declaration: the build environment vendors
//!   no `libc` crate, but std already links the platform libc), falling
//!   back to a `recv_from`/`send_to` drain loop on other targets.
//! * [`UdpTransport::per_datagram`] — one syscall per datagram, the
//!   pre-batching behaviour, kept as the measurable baseline arm of
//!   `bench_net` (exactly like the `per_item` arm of `BENCH_rt.json`).
//!
//! Sockets are switched to nonblocking mode by the constructors; *waiting*
//! is the caller's job (the serve loop owns a spin → yield → sleep
//! backoff, mirroring the worker idle contract), which keeps the
//! transport itself allocation- and policy-free.

use std::io;
use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, SocketAddrV4, SocketAddrV6, UdpSocket};

/// Most frames a single `recvmmsg`/`sendmmsg` call will move. 64 matches
/// the dispatcher's `dispatch_burst`, so one syscall's worth of datagrams
/// flows through the dispatch pipeline as one burst.
pub const MAX_BATCH: usize = 64;

/// Payload capacity of a [`Frame`]. Both wire messages (18-byte request,
/// 24-byte response) fit with room to spare; longer datagrams are
/// truncated by the kernel and rejected as malformed by the exact-length
/// decoders in [`crate::net`].
pub const MAX_FRAME: usize = 64;

/// One datagram: payload bytes plus the peer address (source on receive,
/// destination on send). Fixed-size so batches are flat preallocated
/// arrays with no per-frame allocation.
#[derive(Debug, Clone, Copy)]
pub struct Frame {
    /// Valid payload length (`<= MAX_FRAME`).
    pub len: u16,
    /// Peer address: source of a received frame, destination of a frame
    /// to send.
    pub addr: SocketAddr,
    /// Payload storage; only `buf[..len]` is meaningful.
    pub buf: [u8; MAX_FRAME],
}

impl Frame {
    /// An empty frame with a placeholder address (overwritten on
    /// receive).
    pub fn empty() -> Frame {
        Frame {
            len: 0,
            addr: SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0)),
            buf: [0u8; MAX_FRAME],
        }
    }

    /// A frame carrying `payload` for `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_FRAME`].
    pub fn new(payload: &[u8], addr: SocketAddr) -> Frame {
        assert!(payload.len() <= MAX_FRAME, "frame payload too large");
        let mut f = Frame::empty();
        f.len = payload.len() as u16;
        f.addr = addr;
        f.buf[..payload.len()].copy_from_slice(payload);
        f
    }

    /// The valid payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }
}

/// Syscall/frame counters a transport accumulates over its lifetime —
/// the observability that lets `bench_net` report achieved batch sizes
/// and the audit tie frame counts to request counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportStats {
    /// Receive syscalls that returned at least one frame. For the
    /// completion-driven io_uring transport this counts *reap passes*
    /// that yielded a frame — receives there cost no syscall at all
    /// (see `enter_calls`).
    pub recv_calls: u64,
    /// Frames received.
    pub recv_frames: u64,
    /// Send syscalls issued (`io_uring_enter` calls that carried send
    /// SQEs, for the io_uring transport).
    pub send_calls: u64,
    /// Frames sent.
    pub send_frames: u64,
    /// `io_uring_enter` syscalls issued over the transport's lifetime
    /// (0 for the mmsg/per-datagram transports — they have no ring).
    pub enter_calls: u64,
    /// Effective `SO_RCVBUF` as the kernel reports it after any
    /// `rmem_max` clamp (0 = unknown). The kernel clamps silently, so
    /// this is read back at construction rather than assumed.
    pub rcvbuf_bytes: u64,
    /// Effective `SO_SNDBUF` after any `wmem_max` clamp (0 = unknown).
    pub sndbuf_bytes: u64,
}

impl TransportStats {
    /// Mean frames moved per receive syscall (1.0 = no batching won).
    pub fn frames_per_recv_call(&self) -> f64 {
        self.recv_frames as f64 / self.recv_calls.max(1) as f64
    }

    /// Mean frames moved per send syscall.
    pub fn frames_per_send_call(&self) -> f64 {
        self.send_frames as f64 / self.send_calls.max(1) as f64
    }
}

/// A nonblocking batched datagram transport.
pub trait Transport {
    /// Receives up to `out.len()` frames without blocking. Returns how
    /// many frames were filled; `0` means nothing was pending (the
    /// caller owns backoff).
    fn recv_batch(&mut self, out: &mut [Frame]) -> io::Result<usize>;

    /// Sends every frame, in order, retrying transient backpressure
    /// (`WouldBlock`) internally with a yield — UDP send buffers drain to
    /// loopback quickly, so this never spins long. Frames refused by the
    /// peer's stack (e.g. `ECONNREFUSED` bounced off a closed port) are
    /// counted as sent: UDP gives no delivery guarantee either way.
    fn send_batch(&mut self, frames: &[Frame]) -> io::Result<()>;

    /// Most frames a single receive call will return (the burst bound).
    fn max_batch(&self) -> usize;

    /// Human-readable implementation label (lands in result JSON).
    fn label(&self) -> &'static str;

    /// Lifetime syscall/frame counters.
    fn stats(&self) -> TransportStats;
}

// Lets `net::server_transport` hand back a probe-selected transport as
// `Box<dyn Transport + Send>` that still plugs into `serve<T: Transport>`.
impl<T: Transport + ?Sized> Transport for Box<T> {
    fn recv_batch(&mut self, out: &mut [Frame]) -> io::Result<usize> {
        (**self).recv_batch(out)
    }

    fn send_batch(&mut self, frames: &[Frame]) -> io::Result<()> {
        (**self).send_batch(frames)
    }

    fn max_batch(&self) -> usize {
        (**self).max_batch()
    }

    fn label(&self) -> &'static str {
        (**self).label()
    }

    fn stats(&self) -> TransportStats {
        (**self).stats()
    }
}

// ---------------------------------------------------------------------------
// Linux recvmmsg/sendmmsg bindings.
//
// The vendored dependency set has no `libc` crate, so the few pieces of
// ABI this module needs are declared locally. Layouts match the x86-64 /
// aarch64 glibc definitions (pointer-sized `msg_iovlen`/`msg_controllen`,
// 4-byte trailing padding supplied by `repr(C)` field alignment).
// ---------------------------------------------------------------------------
#[cfg(target_os = "linux")]
pub(crate) mod sys {
    use std::os::fd::RawFd;

    pub const AF_INET: u16 = 2;
    pub const AF_INET6: u16 = 10;
    pub const MSG_DONTWAIT: i32 = 0x40;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_SNDBUF: i32 = 7;
    pub const SO_RCVBUF: i32 = 8;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct IoVec {
        pub iov_base: *mut u8,
        pub iov_len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MsgHdr {
        pub msg_name: *mut u8,
        pub msg_namelen: u32,
        pub msg_iov: *mut IoVec,
        pub msg_iovlen: usize,
        pub msg_control: *mut u8,
        pub msg_controllen: usize,
        pub msg_flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MMsgHdr {
        pub msg_hdr: MsgHdr,
        pub msg_len: u32,
    }

    /// Big enough for any `sockaddr_*` the kernel writes (the real
    /// `sockaddr_storage` is 128 bytes, 8-aligned).
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    pub struct SockAddrStorage {
        pub bytes: [u8; 128],
    }

    impl SockAddrStorage {
        pub fn zeroed() -> Self {
            SockAddrStorage { bytes: [0u8; 128] }
        }
    }

    extern "C" {
        pub fn recvmmsg(
            sockfd: RawFd,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut u8, // struct timespec*; always null here
        ) -> i32;
        pub fn sendmmsg(sockfd: RawFd, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        pub fn setsockopt(
            sockfd: RawFd,
            level: i32,
            optname: i32,
            optval: *const u8,
            optlen: u32,
        ) -> i32;
        pub fn getsockopt(
            sockfd: RawFd,
            level: i32,
            optname: i32,
            optval: *mut u8,
            optlen: *mut u32,
        ) -> i32;
    }
}

/// Requests larger kernel socket buffers (both directions) and returns
/// the sizes the kernel actually granted as `(rcvbuf, sndbuf)`.
///
/// The kernel clamps the request to `rmem_max`/`wmem_max` *silently* —
/// `setsockopt` succeeds even when the effective size is a fraction of
/// what was asked for (and the value `getsockopt` reports is doubled by
/// the kernel to account for bookkeeping overhead). Pre-fix this helper
/// returned `()` and every caller assumed the request took; now the
/// achieved sizes are read back and surfaced so a clamped buffer shows
/// up in [`TransportStats`] and the tq-run/v1 `net` block instead of
/// masquerading as mysterious loopback loss. Off Linux the request is a
/// no-op and `(0, 0)` is returned (unknown).
pub fn set_socket_buffers(socket: &UdpSocket, bytes: usize) -> io::Result<(usize, usize)> {
    #[cfg(target_os = "linux")]
    {
        use std::os::fd::AsRawFd;
        let val: i32 = bytes.min(i32::MAX as usize) as i32;
        let ptr = &val as *const i32 as *const u8;
        let len = std::mem::size_of::<i32>() as u32;
        // SAFETY: fd is a live socket owned by `socket`; optval points at
        // a 4-byte int, as SO_RCVBUF/SO_SNDBUF require.
        unsafe {
            if sys::setsockopt(socket.as_raw_fd(), sys::SOL_SOCKET, sys::SO_RCVBUF, ptr, len) != 0 {
                return Err(io::Error::last_os_error());
            }
            if sys::setsockopt(socket.as_raw_fd(), sys::SOL_SOCKET, sys::SO_SNDBUF, ptr, len) != 0 {
                return Err(io::Error::last_os_error());
            }
        }
        effective_socket_buffers(socket)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (socket, bytes);
        Ok((0, 0))
    }
}

/// Reads back the effective `(SO_RCVBUF, SO_SNDBUF)` sizes. Returns
/// `(0, 0)` off Linux (unknown).
pub fn effective_socket_buffers(socket: &UdpSocket) -> io::Result<(usize, usize)> {
    #[cfg(target_os = "linux")]
    {
        use std::os::fd::AsRawFd;
        let read_back = |optname: i32| -> io::Result<usize> {
            let mut val: i32 = 0;
            let mut len = std::mem::size_of::<i32>() as u32;
            // SAFETY: optval points at a 4-byte int and optlen at its
            // size, as SO_RCVBUF/SO_SNDBUF getsockopt requires.
            let rc = unsafe {
                sys::getsockopt(
                    socket.as_raw_fd(),
                    sys::SOL_SOCKET,
                    optname,
                    &mut val as *mut i32 as *mut u8,
                    &mut len,
                )
            };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(val.max(0) as usize)
        };
        Ok((read_back(sys::SO_RCVBUF)?, read_back(sys::SO_SNDBUF)?))
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = socket;
        Ok((0, 0))
    }
}

#[cfg(target_os = "linux")]
pub(crate) fn decode_sockaddr(storage: &sys::SockAddrStorage, len: u32) -> Option<SocketAddr> {
    let b = &storage.bytes;
    let family = u16::from_ne_bytes([b[0], b[1]]);
    match family {
        sys::AF_INET if len as usize >= 8 => {
            // sockaddr_in: family u16 | port u16 (BE) | addr u32 (BE).
            let port = u16::from_be_bytes([b[2], b[3]]);
            let ip = Ipv4Addr::new(b[4], b[5], b[6], b[7]);
            Some(SocketAddr::V4(SocketAddrV4::new(ip, port)))
        }
        sys::AF_INET6 if len as usize >= 28 => {
            // sockaddr_in6: family u16 | port u16 (BE) | flowinfo u32 |
            // addr [u8;16] | scope u32.
            let port = u16::from_be_bytes([b[2], b[3]]);
            let flowinfo = u32::from_ne_bytes([b[4], b[5], b[6], b[7]]);
            let mut ip = [0u8; 16];
            ip.copy_from_slice(&b[8..24]);
            let scope = u32::from_ne_bytes([b[24], b[25], b[26], b[27]]);
            Some(SocketAddr::V6(SocketAddrV6::new(
                Ipv6Addr::from(ip),
                port,
                flowinfo,
                scope,
            )))
        }
        _ => None,
    }
}

#[cfg(target_os = "linux")]
pub(crate) fn encode_sockaddr(addr: &SocketAddr, storage: &mut sys::SockAddrStorage) -> u32 {
    let b = &mut storage.bytes;
    match addr {
        SocketAddr::V4(v4) => {
            b[0..2].copy_from_slice(&sys::AF_INET.to_ne_bytes());
            b[2..4].copy_from_slice(&v4.port().to_be_bytes());
            b[4..8].copy_from_slice(&v4.ip().octets());
            b[8..16].fill(0);
            16 // sizeof(sockaddr_in)
        }
        SocketAddr::V6(v6) => {
            b[0..2].copy_from_slice(&sys::AF_INET6.to_ne_bytes());
            b[2..4].copy_from_slice(&v6.port().to_be_bytes());
            b[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
            b[8..24].copy_from_slice(&v6.ip().octets());
            b[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
            28 // sizeof(sockaddr_in6)
        }
    }
}

/// Preallocated scratch for the mmsg syscalls: header, iovec and address
/// storage per batch slot. The embedded pointers are wired to the
/// caller's [`Frame`] buffers for the duration of one syscall only.
#[cfg(target_os = "linux")]
struct MmsgScratch {
    hdrs: Vec<sys::MMsgHdr>,
    iovs: Vec<sys::IoVec>,
    addrs: Vec<sys::SockAddrStorage>,
    payloads: Vec<[u8; MAX_FRAME]>,
}

#[cfg(target_os = "linux")]
impl MmsgScratch {
    fn new(batch: usize) -> Self {
        let zero_hdr = sys::MMsgHdr {
            msg_hdr: sys::MsgHdr {
                msg_name: std::ptr::null_mut(),
                msg_namelen: 0,
                msg_iov: std::ptr::null_mut(),
                msg_iovlen: 0,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        };
        MmsgScratch {
            hdrs: vec![zero_hdr; batch],
            iovs: vec![
                sys::IoVec {
                    iov_base: std::ptr::null_mut(),
                    iov_len: 0,
                };
                batch
            ],
            addrs: vec![sys::SockAddrStorage::zeroed(); batch],
            payloads: vec![[0u8; MAX_FRAME]; batch],
        }
    }
}

/// The UDP implementation of [`Transport`]. See the module docs for the
/// two modes.
pub struct UdpTransport {
    socket: UdpSocket,
    batch: usize,
    stats: TransportStats,
    #[cfg(target_os = "linux")]
    scratch: Option<MmsgScratch>,
}

// SAFETY: the raw pointers inside `MmsgScratch` are scratch space wired
// up and consumed within a single `recv_batch`/`send_batch` call; they
// never alias data owned by another thread between calls.
#[cfg(target_os = "linux")]
unsafe impl Send for UdpTransport {}

impl std::fmt::Debug for UdpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpTransport")
            .field("label", &self.label())
            .field("batch", &self.batch)
            .field("stats", &self.stats)
            .finish()
    }
}

impl UdpTransport {
    /// The batched transport: `recvmmsg`/`sendmmsg` bursts of up to
    /// [`MAX_BATCH`] frames on Linux, a nonblocking drain loop elsewhere.
    /// The socket is switched to nonblocking mode.
    pub fn batched(socket: UdpSocket) -> io::Result<UdpTransport> {
        Self::with_batch(socket, MAX_BATCH)
    }

    /// One syscall per datagram — the pre-batching baseline, kept
    /// selectable so `bench_net` can measure exactly what batching buys.
    pub fn per_datagram(socket: UdpSocket) -> io::Result<UdpTransport> {
        Self::with_batch(socket, 1)
    }

    /// A transport moving up to `batch` (clamped to `1..=MAX_BATCH`)
    /// frames per syscall.
    pub fn with_batch(socket: UdpSocket, batch: usize) -> io::Result<UdpTransport> {
        let batch = batch.clamp(1, MAX_BATCH);
        socket.set_nonblocking(true)?;
        let mut stats = TransportStats::default();
        // Record the *achieved* socket buffer sizes (the kernel clamps
        // setsockopt requests silently) so they surface in the stats.
        if let Ok((rcv, snd)) = effective_socket_buffers(&socket) {
            stats.rcvbuf_bytes = rcv as u64;
            stats.sndbuf_bytes = snd as u64;
        }
        Ok(UdpTransport {
            socket,
            batch,
            stats,
            #[cfg(target_os = "linux")]
            scratch: (batch > 1).then(|| MmsgScratch::new(batch)),
        })
    }

    /// The local address of the underlying socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Borrows the underlying socket (e.g. to tune buffer sizes).
    pub fn socket(&self) -> &UdpSocket {
        &self.socket
    }

    /// Fallback receive: drain with one `recv_from` per frame.
    fn recv_batch_syscall(&mut self, out: &mut [Frame]) -> io::Result<usize> {
        let mut n = 0;
        while n < out.len().min(self.batch) {
            match self.socket.recv_from(&mut out[n].buf) {
                Ok((len, addr)) => {
                    out[n].len = len.min(MAX_FRAME) as u16;
                    out[n].addr = addr;
                    n += 1;
                    self.stats.recv_frames += 1;
                    self.stats.recv_calls += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // A stray ICMP bounce surfaced on an unconnected socket:
                // not a frame, not fatal.
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(n)
    }

    /// Fallback send: one `send_to` per frame, yielding through transient
    /// backpressure.
    fn send_batch_syscall(&mut self, frames: &[Frame]) -> io::Result<()> {
        for f in frames {
            loop {
                match self.socket.send_to(f.payload(), f.addr) {
                    Ok(_) => break,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::yield_now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => break,
                    Err(e) => return Err(e),
                }
            }
            self.stats.send_calls += 1;
            self.stats.send_frames += 1;
        }
        Ok(())
    }

    #[cfg(target_os = "linux")]
    fn recv_batch_mmsg(&mut self, out: &mut [Frame]) -> io::Result<usize> {
        use std::os::fd::AsRawFd;
        let scratch = self.scratch.as_mut().expect("batched mode has scratch");
        let want = out.len().min(self.batch);
        for (i, frame) in out.iter_mut().enumerate().take(want) {
            scratch.iovs[i] = sys::IoVec {
                iov_base: frame.buf.as_mut_ptr(),
                iov_len: MAX_FRAME,
            };
            scratch.addrs[i] = sys::SockAddrStorage::zeroed();
            scratch.hdrs[i] = sys::MMsgHdr {
                msg_hdr: sys::MsgHdr {
                    msg_name: scratch.addrs[i].bytes.as_mut_ptr(),
                    msg_namelen: 128,
                    msg_iov: &mut scratch.iovs[i],
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            };
        }
        // SAFETY: every header points at live scratch/frame memory set up
        // just above; vlen matches the initialized prefix.
        let rc = unsafe {
            sys::recvmmsg(
                self.socket.as_raw_fd(),
                scratch.hdrs.as_mut_ptr(),
                want as u32,
                sys::MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            return match err.kind() {
                io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted => Ok(0),
                io::ErrorKind::ConnectionRefused => Ok(0),
                _ => Err(err),
            };
        }
        let got = rc as usize;
        let mut n = 0;
        for i in 0..got {
            // Payload longer than the iovec is truncated by the kernel;
            // the stored length is what reached the buffer, and the
            // exact-length decoders reject it downstream.
            let len = (scratch.hdrs[i].msg_len as usize).min(MAX_FRAME);
            match decode_sockaddr(&scratch.addrs[i], scratch.hdrs[i].msg_hdr.msg_namelen) {
                Some(addr) => {
                    out[n].len = len as u16;
                    out[n].addr = addr;
                    if n != i {
                        // Compact over any frame whose source address the
                        // kernel reported in an unknown family.
                        let (a, b) = out.split_at_mut(i);
                        a[n].buf = b[0].buf;
                    }
                    n += 1;
                }
                None => continue,
            }
        }
        self.stats.recv_calls += 1;
        self.stats.recv_frames += n as u64;
        Ok(n)
    }

    #[cfg(target_os = "linux")]
    fn send_batch_mmsg(&mut self, frames: &[Frame]) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        let mut sent = 0usize;
        while sent < frames.len() {
            let scratch = self.scratch.as_mut().expect("batched mode has scratch");
            let want = (frames.len() - sent).min(self.batch);
            for i in 0..want {
                let f = &frames[sent + i];
                // Payloads are copied into owned scratch so the headers
                // never borrow the caller's frames across the retry loop.
                scratch.payloads[i][..f.len as usize].copy_from_slice(f.payload());
                let namelen = encode_sockaddr(&f.addr, &mut scratch.addrs[i]);
                scratch.iovs[i] = sys::IoVec {
                    iov_base: scratch.payloads[i].as_mut_ptr(),
                    iov_len: f.len as usize,
                };
                scratch.hdrs[i] = sys::MMsgHdr {
                    msg_hdr: sys::MsgHdr {
                        msg_name: scratch.addrs[i].bytes.as_mut_ptr(),
                        msg_namelen: namelen,
                        msg_iov: &mut scratch.iovs[i],
                        msg_iovlen: 1,
                        msg_control: std::ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                };
            }
            // SAFETY: as in recv — headers reference scratch initialized
            // above, vlen bounds the initialized prefix.
            let rc = unsafe {
                sys::sendmmsg(
                    self.socket.as_raw_fd(),
                    scratch.hdrs.as_mut_ptr(),
                    want as u32,
                    sys::MSG_DONTWAIT,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                match err.kind() {
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted => {
                        std::thread::yield_now();
                        continue;
                    }
                    // ICMP bounce from a vanished peer: skip the frame.
                    io::ErrorKind::ConnectionRefused => {
                        sent += 1;
                        self.stats.send_frames += 1;
                        continue;
                    }
                    _ => return Err(err),
                }
            }
            let pushed = (rc as usize).min(want);
            self.stats.send_calls += 1;
            self.stats.send_frames += pushed as u64;
            sent += pushed;
            if pushed < want {
                std::thread::yield_now();
            }
        }
        Ok(())
    }
}

impl Transport for UdpTransport {
    fn recv_batch(&mut self, out: &mut [Frame]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        #[cfg(target_os = "linux")]
        if self.scratch.is_some() {
            return self.recv_batch_mmsg(out);
        }
        self.recv_batch_syscall(out)
    }

    fn send_batch(&mut self, frames: &[Frame]) -> io::Result<()> {
        if frames.is_empty() {
            return Ok(());
        }
        #[cfg(target_os = "linux")]
        if self.scratch.is_some() {
            return self.send_batch_mmsg(frames);
        }
        self.send_batch_syscall(frames)
    }

    fn max_batch(&self) -> usize {
        self.batch
    }

    fn label(&self) -> &'static str {
        #[cfg(target_os = "linux")]
        if self.scratch.is_some() {
            return "udp:mmsg";
        }
        "udp:syscall"
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(batch_a: usize, batch_b: usize) -> (UdpTransport, UdpTransport) {
        let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        (
            UdpTransport::with_batch(a, batch_a).unwrap(),
            UdpTransport::with_batch(b, batch_b).unwrap(),
        )
    }

    fn recv_all(t: &mut UdpTransport, n: usize) -> Vec<Frame> {
        let mut out = vec![Frame::empty(); MAX_BATCH];
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while got.len() < n {
            let k = t.recv_batch(&mut out).expect("recv");
            got.extend_from_slice(&out[..k]);
            if k == 0 {
                assert!(std::time::Instant::now() < deadline, "timed out at {}", got.len());
                std::thread::yield_now();
            }
        }
        got
    }

    #[test]
    fn batched_round_trip_many_frames() {
        let (mut tx, mut rx) = pair(MAX_BATCH, MAX_BATCH);
        let dst = rx.local_addr().unwrap();
        let n = 200usize; // > MAX_BATCH: exercises send chunking
        let frames: Vec<Frame> =
            (0..n).map(|i| Frame::new(&(i as u64).to_le_bytes(), dst)).collect();
        tx.send_batch(&frames).expect("send");
        let got = recv_all(&mut rx, n);
        let mut seen: Vec<u64> = got
            .iter()
            .map(|f| u64::from_le_bytes(f.payload().try_into().unwrap()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
        assert_eq!(rx.stats().recv_frames, n as u64);
        // Batching must actually batch: far fewer syscalls than frames.
        if rx.label() == "udp:mmsg" {
            assert!(
                rx.stats().recv_calls < n as u64 / 2,
                "recvmmsg made {} calls for {} frames",
                rx.stats().recv_calls,
                n
            );
        }
    }

    #[test]
    fn per_datagram_mode_moves_one_frame_per_call() {
        let (mut tx, mut rx) = pair(1, 1);
        let dst = rx.local_addr().unwrap();
        let frames: Vec<Frame> = (0..8u64).map(|i| Frame::new(&i.to_le_bytes(), dst)).collect();
        tx.send_batch(&frames).expect("send");
        let got = recv_all(&mut rx, 8);
        assert_eq!(got.len(), 8);
        assert_eq!(rx.stats().recv_calls, 8, "per-datagram arm must not batch");
        assert_eq!(tx.stats().send_calls, 8);
        assert_eq!(rx.label(), "udp:syscall");
    }

    #[test]
    fn source_addresses_are_reported() {
        let (mut tx, mut rx) = pair(MAX_BATCH, MAX_BATCH);
        let dst = rx.local_addr().unwrap();
        let src = tx.local_addr().unwrap();
        tx.send_batch(&[Frame::new(b"hello", dst)]).expect("send");
        let got = recv_all(&mut rx, 1);
        assert_eq!(got[0].payload(), b"hello");
        assert_eq!(got[0].addr, src, "reply address must be the sender");
    }

    #[test]
    fn replies_reach_the_original_sender() {
        let (mut client, mut server) = pair(MAX_BATCH, MAX_BATCH);
        let srv = server.local_addr().unwrap();
        client.send_batch(&[Frame::new(b"ping", srv)]).expect("send");
        let req = recv_all(&mut server, 1);
        server
            .send_batch(&[Frame::new(b"pong", req[0].addr)])
            .expect("reply");
        let resp = recv_all(&mut client, 1);
        assert_eq!(resp[0].payload(), b"pong");
    }

    #[test]
    fn empty_batches_are_noops() {
        let (mut t, _keep) = pair(MAX_BATCH, MAX_BATCH);
        assert_eq!(t.recv_batch(&mut []).unwrap(), 0);
        t.send_batch(&[]).unwrap();
        let s = t.stats();
        assert_eq!(
            (s.recv_calls, s.recv_frames, s.send_calls, s.send_frames),
            (0, 0, 0, 0),
            "no frames moved, no calls counted"
        );
        // Nothing pending: nonblocking receive returns 0, not an error.
        let mut out = vec![Frame::empty(); 4];
        assert_eq!(t.recv_batch(&mut out).unwrap(), 0);
    }

    #[test]
    fn oversized_datagrams_are_truncated_to_max_frame() {
        let (tx, mut rx) = pair(MAX_BATCH, MAX_BATCH);
        let dst = rx.local_addr().unwrap();
        // Send straight on the socket: Frame::new would (rightly) panic.
        let big = [0xABu8; 2 * MAX_FRAME];
        tx.socket().send_to(&big, dst).expect("send oversized");
        let got = recv_all(&mut rx, 1);
        assert_eq!(got[0].len as usize, MAX_FRAME, "kernel-truncated to capacity");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sockaddr_round_trips() {
        let mut storage = sys::SockAddrStorage::zeroed();
        let v4: SocketAddr = "192.168.7.9:4711".parse().unwrap();
        let len = encode_sockaddr(&v4, &mut storage);
        assert_eq!(decode_sockaddr(&storage, len), Some(v4));
        let v6: SocketAddr = "[2001:db8::17]:9000".parse().unwrap();
        let len = encode_sockaddr(&v6, &mut storage);
        assert_eq!(decode_sockaddr(&storage, len), Some(v6));
        // Unknown family: rejected, not misparsed.
        storage.bytes[0..2].copy_from_slice(&77u16.to_ne_bytes());
        assert_eq!(decode_sockaddr(&storage, 16), None);
    }

    #[test]
    fn socket_buffer_tuning_is_accepted() {
        let s = UdpSocket::bind("127.0.0.1:0").unwrap();
        let (rcv, snd) = set_socket_buffers(&s, 1 << 20).expect("setsockopt");
        #[cfg(target_os = "linux")]
        {
            // The kernel may clamp far below the request, but the
            // achieved sizes must be real (non-zero) and agree with an
            // independent read-back.
            assert!(rcv > 0 && snd > 0, "achieved sizes must be read back");
            assert_eq!(effective_socket_buffers(&s).unwrap(), (rcv, snd));
        }
        #[cfg(not(target_os = "linux"))]
        assert_eq!((rcv, snd), (0, 0));
    }

    #[test]
    fn achieved_buffer_sizes_land_in_transport_stats() {
        let s = UdpSocket::bind("127.0.0.1:0").unwrap();
        set_socket_buffers(&s, 1 << 20).expect("setsockopt");
        let t = UdpTransport::batched(s).unwrap();
        #[cfg(target_os = "linux")]
        {
            assert!(t.stats().rcvbuf_bytes > 0);
            assert!(t.stats().sndbuf_bytes > 0);
        }
        let _ = t;
    }
}
