//! The [`TinyQuanta`] server facade.
//!
//! Wires together the dispatcher thread, worker threads, rings, shared
//! counters and the clock, exposing a submit/collect API. The real system
//! polls a NIC; here requests arrive through an in-process channel (the
//! network was never the paper's bottleneck — see DESIGN.md).

use crate::clock::TscClock;
use crate::dispatcher;
use crate::job::Job;
use crate::ring;
use crate::worker::{self, WorkerHandle};
use crossbeam::channel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tq_core::counters::SharedCounters;
use tq_core::policy::{DispatchPolicy, TieBreak, WorkerPolicy};
use tq_core::{ClassId, JobId, Nanos};

/// A request submitted to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtRequest {
    /// Unique id assigned at submission.
    pub id: JobId,
    /// Reporting class (blind to the scheduler, as always).
    pub class: ClassId,
    /// Service-time hint consumed by synthetic job factories
    /// ([`crate::SpinJob`]); real factories may ignore it.
    pub service: Nanos,
    /// Server wall-clock time at submission.
    pub submitted: Nanos,
}

/// A finished job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The job.
    pub id: JobId,
    /// Its class.
    pub class: ClassId,
    /// Submission timestamp.
    pub submitted: Nanos,
    /// Completion timestamp (same clock).
    pub finished: Nanos,
    /// Quanta the job consumed.
    pub quanta: u64,
    /// Which worker ran it.
    pub worker: usize,
}

impl Completion {
    /// Sojourn time: submission to completion.
    pub fn sojourn(&self) -> Nanos {
        self.finished.saturating_sub(self.submitted)
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (the paper uses 16 dedicated cores; on a small
    /// host these are oversubscribed OS threads).
    pub workers: usize,
    /// Scheduling quantum.
    pub quantum: Nanos,
    /// Task-coroutine slots per worker (§5.1: eight).
    pub task_slots: usize,
    /// Dispatch-ring capacity per worker.
    pub ring_capacity: usize,
    /// Load-balancing policy.
    pub dispatch: DispatchPolicy,
    /// Worker quantum discipline: PS (default), FCFS (never preempt), or
    /// least-attained-service (the §3.1 dynamic-quanta extension).
    pub discipline: WorkerPolicy,
    /// Whether idle workers steal queued jobs from siblings (the Caladan
    /// configuration; pairs naturally with FCFS + RSS dispatch).
    pub work_stealing: bool,
    /// Seed for policy randomness.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            quantum: Nanos::from_micros(5),
            task_slots: tq_core::costs::TASK_COROUTINES_PER_WORKER,
            ring_capacity: 1024,
            dispatch: DispatchPolicy::Jsq(TieBreak::MaxServicedQuanta),
            discipline: WorkerPolicy::ProcessorSharing,
            work_stealing: false,
            seed: 42,
        }
    }
}

/// A job factory: builds the coroutine for each arriving request.
pub type JobFactory = dyn Fn(&RtRequest) -> Box<dyn Job> + Send + Sync;

/// Internal statistics collected at shutdown: the dispatcher's counters
/// plus each worker's, in worker-index order. Previously these were
/// dropped at shutdown; the harness now surfaces them in `RunOutput`.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Dispatcher-thread counters (forwarded requests, ring backpressure).
    pub dispatcher: dispatcher::DispatcherStats,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<worker::WorkerStats>,
}

impl ServerStats {
    /// Total jobs completed across all workers.
    pub fn total_completed(&self) -> u64 {
        self.workers.iter().map(|w| w.completed).sum()
    }

    /// Total quanta executed across all workers.
    pub fn total_quanta(&self) -> u64 {
        self.workers.iter().map(|w| w.quanta).sum()
    }

    /// Total jobs stolen across all workers (work-stealing mode).
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Highest dispatch-ring occupancy observed on any worker.
    pub fn max_ring_occupancy(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.max_ring_occupancy)
            .max()
            .unwrap_or(0)
    }
}

/// A running Tiny Quanta server.
#[derive(Debug)]
pub struct TinyQuanta {
    submit_tx: Option<channel::Sender<RtRequest>>,
    completion_rx: channel::Receiver<Completion>,
    dispatcher: Option<std::thread::JoinHandle<dispatcher::DispatcherStats>,>,
    workers: Vec<WorkerHandle>,
    drain: Arc<AtomicBool>,
    clock: TscClock,
    next_id: std::sync::atomic::AtomicU64,
}

impl TinyQuanta {
    /// Starts the server: spawns the dispatcher and worker threads.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (zero workers or slots).
    pub fn start<F>(config: ServerConfig, factory: F) -> TinyQuanta
    where
        F: Fn(&RtRequest) -> Box<dyn Job> + Send + Sync + 'static,
    {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.task_slots > 0, "need at least one task slot");
        let clock = TscClock::calibrated();
        let factory: Arc<JobFactory> = Arc::new(factory);
        let counters: Arc<Vec<SharedCounters>> = Arc::new(
            (0..config.workers).map(|_| SharedCounters::new()).collect(),
        );
        let drain = Arc::new(AtomicBool::new(false));
        let (submit_tx, submit_rx) = channel::unbounded::<RtRequest>();
        let (completion_tx, completion_rx) = channel::unbounded::<Completion>();

        let mut workers = Vec::with_capacity(config.workers);
        let tx = if config.work_stealing {
            let queues: Vec<Arc<crossbeam::queue::ArrayQueue<RtRequest>>> = (0..config.workers)
                .map(|_| Arc::new(crossbeam::queue::ArrayQueue::new(config.ring_capacity)))
                .collect();
            for w in 0..config.workers {
                workers.push(worker::spawn(
                    w,
                    &config,
                    worker::WorkerRx::Shared {
                        index: w,
                        queues: queues.clone(),
                    },
                    Arc::clone(&factory),
                    Arc::clone(&counters),
                    completion_tx.clone(),
                    Arc::clone(&drain),
                    clock.clone(),
                ));
            }
            dispatcher::DispatchTx::Shared(queues)
        } else {
            let mut producers = Vec::with_capacity(config.workers);
            for w in 0..config.workers {
                let (p, c) = ring::spsc::<RtRequest>(config.ring_capacity);
                producers.push(p);
                workers.push(worker::spawn(
                    w,
                    &config,
                    worker::WorkerRx::Spsc(c),
                    Arc::clone(&factory),
                    Arc::clone(&counters),
                    completion_tx.clone(),
                    Arc::clone(&drain),
                    clock.clone(),
                ));
            }
            dispatcher::DispatchTx::Spsc(producers)
        };
        drop(completion_tx);

        let dispatcher = dispatcher::spawn(
            &config,
            submit_rx,
            tx,
            Arc::clone(&counters),
            Arc::clone(&drain),
        );

        TinyQuanta {
            submit_tx: Some(submit_tx),
            completion_rx,
            dispatcher: Some(dispatcher),
            workers,
            drain,
            clock,
            next_id: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Submits a synthetic request of the given class and service time.
    /// Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if called after [`TinyQuanta::shutdown`].
    pub fn submit(&self, class: u16, service: Nanos) -> JobId {
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let req = RtRequest {
            id,
            class: ClassId(class),
            service,
            submitted: self.clock.wall_nanos(),
        };
        self.submit_tx
            .as_ref()
            .expect("server is shut down")
            .send(req)
            .expect("dispatcher exited early");
        id
    }

    /// The server's wall clock (for aligning external measurements).
    pub fn clock(&self) -> &TscClock {
        &self.clock
    }

    /// Completions received so far, without shutting down.
    pub fn drain_completions(&self) -> Vec<Completion> {
        self.completion_rx.try_iter().collect()
    }

    /// Stops accepting requests, drains all in-flight work, joins every
    /// thread, and returns all remaining completions.
    pub fn shutdown(self) -> Vec<Completion> {
        self.shutdown_with_stats().0
    }

    /// Like [`TinyQuanta::shutdown`], additionally returning the
    /// dispatcher's and each worker's internal statistics (forwarded
    /// counts, ring backpressure events, quanta, steals, ring occupancy).
    pub fn shutdown_with_stats(mut self) -> (Vec<Completion>, ServerStats) {
        self.submit_tx.take(); // dispatcher sees disconnect after drain
        let dispatcher_stats = self
            .dispatcher
            .take()
            .map(|d| d.join().expect("dispatcher panicked"))
            .unwrap_or_default();
        // The dispatcher sets `drain` once every pending request has been
        // forwarded; workers then exit when their queues empty.
        let worker_stats: Vec<_> = self.workers.drain(..).map(|w| w.join()).collect();
        let completions = self.completion_rx.try_iter().collect();
        (
            completions,
            ServerStats {
                dispatcher: dispatcher_stats,
                workers: worker_stats,
            },
        )
    }
}

impl Drop for TinyQuanta {
    fn drop(&mut self) {
        // A dropped (not shut down) server must still unblock its threads.
        self.submit_tx.take();
        self.drain.store(true, Ordering::Release);
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        for w in self.workers.drain(..) {
            w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SpinJob;

    fn spin_server(workers: usize, quantum_us: u64) -> TinyQuanta {
        let clock = TscClock::calibrated();
        TinyQuanta::start(
            ServerConfig {
                workers,
                quantum: Nanos::from_micros(quantum_us),
                ..ServerConfig::default()
            },
            move |req| Box::new(SpinJob::with_clock(req, &clock)),
        )
    }

    #[test]
    fn all_submitted_jobs_complete() {
        let server = spin_server(2, 10);
        let n = 200;
        for i in 0..n {
            server.submit((i % 3) as u16, Nanos::from_micros(5));
        }
        let completions = server.shutdown();
        assert_eq!(completions.len(), n);
        let mut ids: Vec<u64> = completions.iter().map(|c| c.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "every job exactly once");
    }

    #[test]
    fn long_jobs_are_sliced_into_many_quanta() {
        let server = spin_server(1, 5);
        server.submit(0, Nanos::from_micros(200));
        let completions = server.shutdown();
        assert_eq!(completions.len(), 1);
        assert!(
            completions[0].quanta >= 10,
            "200µs at 5µs quanta got only {} quanta",
            completions[0].quanta
        );
    }

    #[test]
    fn sojourn_at_least_service() {
        let server = spin_server(2, 10);
        for _ in 0..20 {
            server.submit(0, Nanos::from_micros(50));
        }
        for c in server.shutdown() {
            assert!(c.sojourn() >= Nanos::from_micros(40), "sojourn {}", c.sojourn());
        }
    }

    #[test]
    fn drop_without_shutdown_terminates() {
        let server = spin_server(2, 10);
        server.submit(0, Nanos::from_micros(5));
        drop(server); // must not hang
    }

    #[test]
    fn completions_spread_across_workers() {
        let server = spin_server(2, 5);
        for _ in 0..100 {
            server.submit(0, Nanos::from_micros(20));
        }
        let completions = server.shutdown();
        let on_zero = completions.iter().filter(|c| c.worker == 0).count();
        assert!(
            on_zero > 0 && on_zero < 100,
            "JSQ should spread load: {on_zero}/100 on worker 0"
        );
    }
}
