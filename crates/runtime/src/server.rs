//! The [`TinyQuanta`] server facade.
//!
//! Wires together the dispatcher thread, worker threads, rings, shared
//! counters and the clock, exposing a submit/collect API. The real system
//! polls a NIC; here requests arrive through an in-process channel (the
//! network was never the paper's bottleneck — see DESIGN.md).
//!
//! Shutdown follows a two-phase drain protocol (DESIGN.md "Shutdown and
//! drain"): phase 1, the dispatcher forwards (or, on abort, counts as
//! dropped) everything it will ever see and sets `dispatcher_done`;
//! phase 2, each worker exits only once that flag is up *and* every
//! queue it can receive work from is empty. The two phases make job
//! conservation — `submitted = completed + dropped`, with every drop
//! named — hold on every exit path, which the optional
//! [`tq_audit::InvariantAuditor`] verifies at shutdown.

use crate::clock::TscClock;
use crate::dispatcher;
use crate::job::Job;
use crate::ring;
use crate::worker::{self, WorkerHandle};
use crossbeam::channel;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tq_audit::fault::FaultPlan;
use tq_audit::{AuditReport, DropReason, InvariantAuditor, RingAuditLog};
use tq_core::counters::SharedCounters;
use tq_core::policy::{DispatchPolicy, TieBreak, WorkerPolicy};
use tq_core::{ClassId, JobId, Nanos};

/// A request submitted to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtRequest {
    /// Unique id assigned at submission.
    pub id: JobId,
    /// Reporting class (blind to the scheduler, as always).
    pub class: ClassId,
    /// Service-time hint consumed by synthetic job factories
    /// ([`crate::SpinJob`]); real factories may ignore it.
    pub service: Nanos,
    /// Server wall-clock time at submission.
    pub submitted: Nanos,
}

/// A finished job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The job.
    pub id: JobId,
    /// Its class.
    pub class: ClassId,
    /// Submission timestamp.
    pub submitted: Nanos,
    /// Completion timestamp (same clock).
    pub finished: Nanos,
    /// Quanta the job consumed.
    pub quanta: u64,
    /// Which worker ran it.
    pub worker: usize,
}

impl Completion {
    /// Sojourn time: submission to completion.
    pub fn sojourn(&self) -> Nanos {
        self.finished.saturating_sub(self.submitted)
    }
}

/// Coordination flags for the two-phase shutdown drain protocol.
///
/// `dispatcher_done` is phase 1: set by the dispatcher only after every
/// request it will ever deliver is in a ring (nothing can appear in any
/// queue afterwards). Workers use it as the gate for phase 2: exit once
/// it is up *and* every queue they can receive from is empty. `abort` is
/// the teardown-without-shutdown path: the dispatcher stops forwarding
/// and accounts the remainder as [`DropReason::ShutdownAbort`] drops
/// rather than pushing into rings whose workers may already be gone.
#[derive(Debug, Default)]
pub(crate) struct ShutdownSignal {
    abort: AtomicBool,
    dispatcher_done: AtomicBool,
}

impl ShutdownSignal {
    pub(crate) fn request_abort(&self) {
        self.abort.store(true, Ordering::Release);
    }

    pub(crate) fn abort_requested(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    pub(crate) fn set_dispatcher_done(&self) {
        self.dispatcher_done.store(true, Ordering::Release);
    }

    pub(crate) fn dispatcher_done(&self) -> bool {
        self.dispatcher_done.load(Ordering::Acquire)
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (the paper uses 16 dedicated cores; on a small
    /// host these are oversubscribed OS threads).
    pub workers: usize,
    /// Scheduling quantum.
    pub quantum: Nanos,
    /// Task-coroutine slots per worker (§5.1: eight).
    pub task_slots: usize,
    /// Dispatch-ring capacity per worker.
    pub ring_capacity: usize,
    /// Load-balancing policy.
    pub dispatch: DispatchPolicy,
    /// Worker quantum discipline: PS (default), FCFS (never preempt), or
    /// least-attained-service (the §3.1 dynamic-quanta extension).
    pub discipline: WorkerPolicy,
    /// Whether idle workers steal queued jobs from siblings (the Caladan
    /// configuration; pairs naturally with FCFS + RSS dispatch).
    pub work_stealing: bool,
    /// Most requests the dispatcher forwards per burst: it blocks for the
    /// first, then drains up to this many more without blocking, paying
    /// one load snapshot and one ring publish per worker per burst
    /// instead of per request (DESIGN.md "Batched dispatch pipeline").
    /// `1` recovers the per-item pipeline exactly.
    pub dispatch_burst: usize,
    /// Per-worker completion-ring capacity. Workers never block on a full
    /// completion ring: overflow stays in a worker-local buffer until the
    /// next drain, so this only bounds the *shared* memory.
    pub completion_capacity: usize,
    /// Workers publish their shared load counters after accumulating this
    /// many quanta locally (and always on idle and at exit), bounding the
    /// dispatcher's view staleness to `counter_flush_quanta` quanta.
    /// `1` recovers per-quantum publication.
    pub counter_flush_quanta: u32,
    /// Idle backoff, phase 1: consecutive idle loop iterations spent in a
    /// `spin_loop` hint before starting to yield.
    pub idle_spins: u32,
    /// Idle backoff, phase 2: consecutive idle iterations spent in
    /// `yield_now` after the spins and before sleeping.
    pub idle_yields: u32,
    /// Idle backoff, phase 3: sleep length once spins and yields are
    /// exhausted. Bounds how long an oversubscribed host busy-waits on
    /// idle workers; also the worst-case wakeup latency for a request
    /// arriving at a deeply idle worker.
    pub idle_sleep: Nanos,
    /// Seed for policy randomness.
    pub seed: u64,
    /// Record ring traffic and run the invariant auditor at shutdown
    /// (`ServerStats::audit`). Off by default: when false no audit state
    /// is allocated and the hot paths pay one predictable `None` branch.
    pub audit: bool,
    /// Deterministic fault plan (worker stall windows); `None` disables
    /// injection entirely.
    pub fault: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            quantum: Nanos::from_micros(5),
            task_slots: tq_core::costs::TASK_COROUTINES_PER_WORKER,
            ring_capacity: 1024,
            dispatch: DispatchPolicy::Jsq(TieBreak::MaxServicedQuanta),
            discipline: WorkerPolicy::ProcessorSharing,
            work_stealing: false,
            dispatch_burst: 64,
            completion_capacity: 4096,
            counter_flush_quanta: 16,
            idle_spins: 128,
            idle_yields: 64,
            idle_sleep: Nanos::from_micros(50),
            seed: 42,
            audit: false,
            fault: None,
        }
    }
}

/// A job factory: builds the coroutine for each arriving request.
pub type JobFactory = dyn Fn(&RtRequest) -> Box<dyn Job> + Send + Sync;

/// Internal statistics collected at shutdown: the dispatcher's counters
/// plus each worker's, in worker-index order. Previously these were
/// dropped at shutdown; the harness now surfaces them in `RunOutput`.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Dispatcher-thread counters (forwarded requests, ring backpressure,
    /// abort-path drops).
    pub dispatcher: dispatcher::DispatcherStats,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<worker::WorkerStats>,
    /// Invariant-audit report, present iff `ServerConfig::audit` was set.
    /// Covers what the server can see on its own: counter-level job
    /// conservation and the ring traffic log. Stream-level checks
    /// (exactly-once ids, timestamps) live with whoever holds the full
    /// completion stream — see `tq-harness`.
    pub audit: Option<AuditReport>,
}

impl ServerStats {
    /// Total jobs completed across all workers.
    pub fn total_completed(&self) -> u64 {
        self.workers.iter().map(|w| w.completed).sum()
    }

    /// Total quanta executed across all workers.
    pub fn total_quanta(&self) -> u64 {
        self.workers.iter().map(|w| w.quanta).sum()
    }

    /// Total jobs stolen across all workers (work-stealing mode).
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Highest dispatch-ring occupancy observed on any worker.
    pub fn max_ring_occupancy(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.max_ring_occupancy)
            .max()
            .unwrap_or(0)
    }

    /// Total requests dropped (never delivered to a worker), across all
    /// named drop reasons.
    pub fn total_dropped(&self) -> u64 {
        self.dispatcher.dropped_on_abort
    }

    /// Drops by named reason, for the conservation ledger. Empty when
    /// nothing was dropped.
    pub fn drops(&self) -> Vec<(DropReason, u64)> {
        let mut drops = Vec::new();
        if self.dispatcher.dropped_on_abort > 0 {
            drops.push((DropReason::ShutdownAbort, self.dispatcher.dropped_on_abort));
        }
        drops
    }
}

/// A running Tiny Quanta server.
#[derive(Debug)]
pub struct TinyQuanta {
    submit_tx: Option<channel::Sender<RtRequest>>,
    /// One SPSC completion ring per worker (that worker is the sole
    /// producer), replacing the old unbounded MPSC channel: a completion
    /// publish is a ring write instead of a channel send, and a burst of
    /// completions is one Release publish. Drained by
    /// [`TinyQuanta::drain_completions`], by shutdown (concurrently with
    /// the worker joins — workers spin-flush their local overflow at
    /// exit), and by `Drop`.
    completion_rx: Vec<ring::Consumer<Completion>>,
    dispatcher: Option<std::thread::JoinHandle<dispatcher::DispatcherStats>>,
    workers: Vec<WorkerHandle>,
    signal: Arc<ShutdownSignal>,
    audit_log: Option<Arc<RingAuditLog>>,
    work_stealing: bool,
    clock: TscClock,
    next_id: std::sync::atomic::AtomicU64,
    /// Live scheduling quantum in nanoseconds, shared with every worker.
    /// Workers re-read it before arming each quantum, so
    /// [`TinyQuanta::set_quantum`] (the adaptive controller's publish
    /// path) takes effect within one quantum without restarting anything.
    quantum: Arc<AtomicU64>,
}

impl TinyQuanta {
    /// Starts the server: spawns the dispatcher and worker threads,
    /// calibrating a fresh [`TscClock`] (~10 ms). Callers that already
    /// hold a calibrated clock should use [`TinyQuanta::start_with_clock`]
    /// so timestamps share one origin and calibration happens once.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (zero workers or slots).
    pub fn start<F>(config: ServerConfig, factory: F) -> TinyQuanta
    where
        F: Fn(&RtRequest) -> Box<dyn Job> + Send + Sync + 'static,
    {
        Self::start_with_clock(config, TscClock::calibrated(), factory)
    }

    /// Starts the server on an existing clock. All request/completion
    /// timestamps are measured on `clock`, so a caller that stamps its
    /// own events on the same clock gets directly comparable numbers —
    /// and avoids paying a second calibration window.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (zero workers or slots).
    pub fn start_with_clock<F>(config: ServerConfig, clock: TscClock, factory: F) -> TinyQuanta
    where
        F: Fn(&RtRequest) -> Box<dyn Job> + Send + Sync + 'static,
    {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.task_slots > 0, "need at least one task slot");
        let factory: Arc<JobFactory> = Arc::new(factory);
        let counters: Arc<Vec<SharedCounters>> = Arc::new(
            (0..config.workers).map(|_| SharedCounters::new()).collect(),
        );
        let signal = Arc::new(ShutdownSignal::default());
        let quantum = Arc::new(AtomicU64::new(config.quantum.0));
        let audit_log = config
            .audit
            .then(|| Arc::new(RingAuditLog::new(config.workers)));
        let (submit_tx, submit_rx) = channel::unbounded::<RtRequest>();
        let mut completion_rx = Vec::with_capacity(config.workers);
        let mut completion_tx = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let (p, c) = ring::spsc::<Completion>(config.completion_capacity.max(1));
            completion_tx.push(p);
            completion_rx.push(c);
        }
        let mut completion_tx = completion_tx.into_iter();

        let mut workers = Vec::with_capacity(config.workers);
        let tx = if config.work_stealing {
            let queues: Vec<Arc<crossbeam::queue::ArrayQueue<RtRequest>>> = (0..config.workers)
                .map(|_| Arc::new(crossbeam::queue::ArrayQueue::new(config.ring_capacity)))
                .collect();
            for w in 0..config.workers {
                workers.push(worker::spawn(
                    w,
                    &config,
                    Arc::clone(&quantum),
                    worker::WorkerRx::Shared {
                        index: w,
                        queues: queues.clone(),
                    },
                    Arc::clone(&factory),
                    Arc::clone(&counters),
                    completion_tx.next().expect("one ring per worker"),
                    Arc::clone(&signal),
                    audit_log.clone(),
                    clock.clone(),
                ));
            }
            dispatcher::DispatchTx::Shared(queues)
        } else {
            let mut producers = Vec::with_capacity(config.workers);
            for w in 0..config.workers {
                let (p, c) = ring::spsc::<RtRequest>(config.ring_capacity);
                producers.push(p);
                workers.push(worker::spawn(
                    w,
                    &config,
                    Arc::clone(&quantum),
                    worker::WorkerRx::Spsc(c),
                    Arc::clone(&factory),
                    Arc::clone(&counters),
                    completion_tx.next().expect("one ring per worker"),
                    Arc::clone(&signal),
                    audit_log.clone(),
                    clock.clone(),
                ));
            }
            dispatcher::DispatchTx::Spsc(producers)
        };

        let work_stealing = config.work_stealing;
        let dispatcher = dispatcher::spawn(
            &config,
            submit_rx,
            tx,
            Arc::clone(&counters),
            Arc::clone(&signal),
            audit_log.clone(),
        );

        TinyQuanta {
            submit_tx: Some(submit_tx),
            completion_rx,
            dispatcher: Some(dispatcher),
            workers,
            signal,
            audit_log,
            work_stealing,
            clock,
            next_id: std::sync::atomic::AtomicU64::new(0),
            quantum,
        }
    }

    /// The scheduling quantum currently in force.
    pub fn quantum(&self) -> Nanos {
        Nanos(self.quantum.load(Ordering::Relaxed))
    }

    /// Publishes a new scheduling quantum to every worker — the adaptive
    /// controller's wall-clock analogue of the simulators' window step.
    /// Workers pick it up before arming their next quantum; jobs mid-
    /// quantum finish their current slice under the old value. Has no
    /// effect on non-preempting disciplines (FCFS never arms a deadline).
    pub fn set_quantum(&self, quantum: Nanos) {
        self.quantum.store(quantum.0, Ordering::Relaxed);
    }

    /// Submits a synthetic request of the given class and service time.
    /// Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if called after [`TinyQuanta::shutdown`].
    pub fn submit(&self, class: u16, service: Nanos) -> JobId {
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let req = RtRequest {
            id,
            class: ClassId(class),
            service,
            submitted: self.clock.wall_nanos(),
        };
        self.submit_tx
            .as_ref()
            .expect("server is shut down")
            .send(req)
            .expect("dispatcher exited early");
        id
    }

    /// Submits a whole burst of `(class, service)` requests, returning
    /// the id of the first; the rest follow sequentially. The burst pays
    /// one clock read and one id-range reservation instead of one of
    /// each per request, and arrives at the dispatcher back-to-back so
    /// it is drained as (at most a few) dispatch bursts — one ledger
    /// snapshot each — rather than `reqs.len()` singletons. All requests
    /// in the burst share one submission timestamp: the burst *arrived*
    /// together (a batched socket read delivers its frames at one
    /// instant).
    ///
    /// # Panics
    ///
    /// Panics on an empty burst or if called after
    /// [`TinyQuanta::shutdown`].
    pub fn submit_burst(&self, reqs: &[(u16, Nanos)]) -> JobId {
        self.try_submit_burst(reqs)
            .expect("server is shut down or dispatcher exited early")
    }

    /// Fallible [`TinyQuanta::submit_burst`] for callers that own a
    /// serving loop: a dispatcher that is gone (shutdown race, or a
    /// dispatcher panic) surfaces as `None` so the loop can drain its
    /// transport and report an error instead of aborting its thread.
    ///
    /// # Panics
    ///
    /// Panics on an empty burst (that is a caller bug, not a runtime
    /// state).
    pub fn try_submit_burst(&self, reqs: &[(u16, Nanos)]) -> Option<JobId> {
        assert!(!reqs.is_empty(), "empty burst");
        let n = reqs.len() as u64;
        let first = self.next_id.fetch_add(n, Ordering::Relaxed);
        let now = self.clock.wall_nanos();
        let tx = self.submit_tx.as_ref()?;
        for (i, &(class, service)) in reqs.iter().enumerate() {
            tx.send(RtRequest {
                id: JobId(first + i as u64),
                class: ClassId(class),
                service,
                submitted: now,
            })
            .ok()?;
        }
        Some(JobId(first))
    }

    /// The server's wall clock (for aligning external measurements).
    pub fn clock(&self) -> &TscClock {
        &self.clock
    }

    /// Completions received so far, without shutting down.
    pub fn drain_completions(&self) -> Vec<Completion> {
        let mut out = Vec::new();
        drain_rings(&self.completion_rx, &mut out);
        out
    }

    /// Appends completions received so far into `out` without shutting
    /// down — the allocation-free variant of
    /// [`TinyQuanta::drain_completions`] for callers polling in a loop
    /// (the socket serving loop reuses one buffer across iterations).
    pub fn drain_completions_into(&self, out: &mut Vec<Completion>) {
        drain_rings(&self.completion_rx, out);
    }

    /// Stops accepting requests, drains all in-flight work, joins every
    /// thread, and returns all remaining completions.
    pub fn shutdown(self) -> Vec<Completion> {
        self.shutdown_with_stats().0
    }

    /// Like [`TinyQuanta::shutdown`], additionally returning the
    /// dispatcher's and each worker's internal statistics (forwarded
    /// counts, ring backpressure events, quanta, steals, ring occupancy)
    /// and — when `ServerConfig::audit` was set — the invariant-audit
    /// report in `ServerStats::audit`.
    pub fn shutdown_with_stats(mut self) -> (Vec<Completion>, ServerStats) {
        self.submit_tx.take(); // dispatcher sees disconnect after drain
        let dispatcher_stats = self
            .dispatcher
            .take()
            .map(|d| d.join().expect("dispatcher panicked"))
            .unwrap_or_default();
        // The dispatcher thread is gone, so "nothing will ever be pushed
        // again" holds even if it died without setting the flag itself —
        // without this, a dispatcher panic would wedge phase 2 forever.
        self.signal.set_dispatcher_done();
        // Phase 1 is complete: the dispatcher set `dispatcher_done` after
        // its last ring push. Phase 2: each worker exits once it confirms
        // every queue it can receive from is empty — spin-flushing any
        // locally buffered completions into its (bounded) completion ring
        // first, so this side must keep draining the rings *while* the
        // workers wind down or a full ring would deadlock the join.
        let mut completions = Vec::new();
        let handles: Vec<WorkerHandle> = self.workers.drain(..).collect();
        loop {
            drain_rings(&self.completion_rx, &mut completions);
            if handles.iter().all(|h| h.is_finished()) {
                break;
            }
            std::thread::yield_now();
        }
        let worker_stats: Vec<_> = handles.into_iter().map(|w| w.join()).collect();
        // Final sweep: everything flushed before the last worker exited.
        drain_rings(&self.completion_rx, &mut completions);
        let submitted = self.next_id.load(Ordering::Relaxed);
        let mut stats = ServerStats {
            dispatcher: dispatcher_stats,
            workers: worker_stats,
            audit: None,
        };
        if self.audit_log.is_some() {
            stats.audit = Some(self.audit(submitted, &stats));
        }
        (completions, stats)
    }

    /// Runs the counter- and ring-level invariant checks the server can
    /// perform without the full completion stream (some completions may
    /// already have been handed out via [`TinyQuanta::drain_completions`]).
    fn audit(&self, submitted: u64, stats: &ServerStats) -> AuditReport {
        let mut auditor = InvariantAuditor::new("server");
        auditor.check_conservation(submitted, stats.total_completed(), &stats.drops());
        auditor.check(
            "dispatcher_accounts_every_submission",
            stats.dispatcher.forwarded + stats.dispatcher.dropped_on_abort == submitted,
            || {
                format!(
                    "forwarded {} + dropped {} != submitted {submitted}",
                    stats.dispatcher.forwarded, stats.dispatcher.dropped_on_abort
                )
            },
        );
        if let Some(log) = &self.audit_log {
            auditor.check_ring_log(log, self.work_stealing);
        }
        auditor.finish()
    }
}

impl Drop for TinyQuanta {
    fn drop(&mut self) {
        // A dropped (not shut down) server must still terminate cleanly:
        // request an abort so the dispatcher drains the submit channel
        // *accounting* undelivered requests as drops instead of pushing
        // them into rings, then runs phase 1/2 of the drain protocol as
        // usual. (Previously this path raised the workers' drain flag
        // before the dispatcher finished: requests could land in rings
        // whose workers had already exited — silently lost — or the
        // dispatcher could retry a full ring forever and hang the join.)
        self.submit_tx.take();
        self.signal.request_abort();
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        // As in `shutdown_with_stats`: once the dispatcher thread is gone
        // the phase-1 condition is true no matter how it exited; set it
        // here so even a panicked dispatcher cannot wedge the join below.
        self.signal.set_dispatcher_done();
        // Same drain-while-joining dance as `shutdown_with_stats`: the
        // workers' exit flush blocks on full completion rings until
        // someone pops. The drained completions are discarded — this is
        // the abandon-ship path.
        let handles: Vec<WorkerHandle> = self.workers.drain(..).collect();
        let mut discard = Vec::new();
        loop {
            drain_rings(&self.completion_rx, &mut discard);
            discard.clear();
            if handles.iter().all(|h| h.is_finished()) {
                break;
            }
            std::thread::yield_now();
        }
        for w in handles {
            w.join();
        }
    }
}

/// Empties every completion ring into `out` (batched pops; one Release
/// recycle per burst per ring).
fn drain_rings(rxs: &[ring::Consumer<Completion>], out: &mut Vec<Completion>) {
    for rx in rxs {
        while rx.pop_batch(out, 1024) > 0 {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SpinJob;

    fn spin_server(workers: usize, quantum_us: u64) -> TinyQuanta {
        let clock = TscClock::calibrated();
        TinyQuanta::start_with_clock(
            ServerConfig {
                workers,
                quantum: Nanos::from_micros(quantum_us),
                ..ServerConfig::default()
            },
            clock.clone(),
            move |req| Box::new(SpinJob::with_clock(req, &clock)),
        )
    }

    #[test]
    fn all_submitted_jobs_complete() {
        let server = spin_server(2, 10);
        let n = 200;
        for i in 0..n {
            server.submit((i % 3) as u16, Nanos::from_micros(5));
        }
        let completions = server.shutdown();
        assert_eq!(completions.len(), n);
        let mut ids: Vec<u64> = completions.iter().map(|c| c.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "every job exactly once");
    }

    #[test]
    fn long_jobs_are_sliced_into_many_quanta() {
        let server = spin_server(1, 5);
        server.submit(0, Nanos::from_micros(200));
        let completions = server.shutdown();
        assert_eq!(completions.len(), 1);
        assert!(
            completions[0].quanta >= 10,
            "200µs at 5µs quanta got only {} quanta",
            completions[0].quanta
        );
    }

    #[test]
    fn sojourn_at_least_service() {
        let server = spin_server(2, 10);
        for _ in 0..20 {
            server.submit(0, Nanos::from_micros(50));
        }
        for c in server.shutdown() {
            assert!(c.sojourn() >= Nanos::from_micros(40), "sojourn {}", c.sojourn());
        }
    }

    #[test]
    fn set_quantum_republishes_to_workers_mid_run() {
        // Same server, two phases: a fat quantum runs a 100µs job in one
        // slice; after `set_quantum` shrinks it to 5µs, a 200µs job must
        // be sliced many times — workers re-read the shared cell without
        // any restart.
        let server = spin_server(1, 500);
        server.submit(0, Nanos::from_micros(100));
        let mut first = Vec::new();
        while first.is_empty() {
            server.drain_completions_into(&mut first);
            std::thread::yield_now();
        }
        assert!(
            first[0].quanta <= 2,
            "100µs under a 500µs quantum took {} quanta",
            first[0].quanta
        );
        server.set_quantum(Nanos::from_micros(5));
        assert_eq!(server.quantum(), Nanos::from_micros(5));
        server.submit(0, Nanos::from_micros(200));
        let completions = server.shutdown();
        assert_eq!(completions.len(), 1);
        assert!(
            completions[0].quanta >= 10,
            "200µs under the republished 5µs quantum took only {} quanta",
            completions[0].quanta
        );
    }

    #[test]
    fn drop_without_shutdown_terminates() {
        let server = spin_server(2, 10);
        server.submit(0, Nanos::from_micros(5));
        drop(server); // must not hang
    }

    #[test]
    fn completions_spread_across_workers() {
        let server = spin_server(2, 5);
        for _ in 0..100 {
            server.submit(0, Nanos::from_micros(20));
        }
        let completions = server.shutdown();
        let on_zero = completions.iter().filter(|c| c.worker == 0).count();
        assert!(
            on_zero > 0 && on_zero < 100,
            "JSQ should spread load: {on_zero}/100 on worker 0"
        );
    }

    #[test]
    fn audited_shutdown_reports_clean() {
        let clock = TscClock::calibrated();
        let server = TinyQuanta::start_with_clock(
            ServerConfig {
                workers: 2,
                quantum: Nanos::from_micros(10),
                audit: true,
                ..ServerConfig::default()
            },
            clock.clone(),
            move |req| Box::new(SpinJob::with_clock(req, &clock)),
        );
        for i in 0..150 {
            server.submit((i % 3) as u16, Nanos::from_micros(5));
        }
        let (completions, stats) = server.shutdown_with_stats();
        assert_eq!(completions.len(), 150);
        let report = stats.audit.as_ref().expect("audit was enabled");
        assert!(report.is_clean(), "audit violations: {report}");
        assert!(report.checks >= 3, "expected several checks to run");
    }
}
