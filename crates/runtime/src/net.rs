//! The socket front end: serving [`TinyQuanta`] over a batched datagram
//! [`Transport`].
//!
//! The paper's client "transmits requests … over UDP" (§5.1). This module
//! provides the matching wire interface, rebuilt around bursts so that
//! the batched dispatch pipeline's wins survive the socket boundary
//! (DESIGN.md "The socket front end"):
//!
//! * one `recvmmsg` drains up to a burst of request datagrams per
//!   syscall ([`Transport::recv_batch`]);
//! * the whole burst is decoded and submitted through
//!   [`TinyQuanta::submit_burst`] — one clock read, one id-range
//!   reservation, and (at the dispatcher) one ledger snapshot per burst;
//! * in-flight `tag`/`addr` bookkeeping lives in a preallocated
//!   [`InFlightSlab`] keyed by the server's *sequential* [`JobId`]s —
//!   no hashing, no per-request allocation;
//! * completions are coalesced per poll iteration and flushed with one
//!   `sendmmsg` ([`Transport::send_batch`]) — never one `send_to` per
//!   completion, in either transport mode.
//!
//! Workers' completions still bypass the dispatcher exactly as §3.2
//! prescribes: the serve loop plays the per-worker TX queues' role,
//! since worker threads must not block on sockets.
//!
//! ## Wire format
//!
//! Request datagram (little-endian): `class: u16 | service_ns: u64 |
//! tag: u64` — exactly 18 bytes. Response: `tag: u64 | sojourn_ns: u64 |
//! quanta: u64` — exactly 24 bytes. Any other length — truncated *or*
//! oversized — is malformed and counted, never parsed. The tag is opaque
//! to the server and lets the client match responses to requests.
//!
//! ## Backpressure and drain contract
//!
//! A well-formed request is *shed* (counted in [`NetStats::shed`], no
//! response ever sent) in exactly two cases: the in-flight bound
//! ([`NetConfig::max_in_flight`]) is reached, or a stop has been
//! requested — after `stop` the loop only drains, so shutdown cannot be
//! postponed indefinitely by new arrivals. Every datagram is accounted:
//! `received == responded + malformed + shed` holds on every exit path
//! ([`NetStats::audit`] checks it, plus the frame-counter agreement with
//! the transport).

use crate::server::{Completion, ServerStats, TinyQuanta};
use crate::transport::{Frame, Transport, TransportStats, UdpTransport, MAX_BATCH};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tq_audit::{AuditReport, DropReason, InvariantAuditor};
use tq_core::Nanos;

/// Size of a request datagram.
pub const REQUEST_BYTES: usize = 18;
/// Size of a response datagram.
pub const RESPONSE_BYTES: usize = 24;

/// Encodes a request datagram.
pub fn encode_request(class: u16, service: Nanos, tag: u64) -> [u8; REQUEST_BYTES] {
    let mut buf = [0u8; REQUEST_BYTES];
    buf[0..2].copy_from_slice(&class.to_le_bytes());
    buf[2..10].copy_from_slice(&service.as_nanos().to_le_bytes());
    buf[10..18].copy_from_slice(&tag.to_le_bytes());
    buf
}

/// Decodes a request datagram; `None` if malformed. Only exactly
/// [`REQUEST_BYTES`]-byte datagrams are well-formed: a truncated *or*
/// oversized frame is rejected (pre-fix, trailing garbage was silently
/// ignored, so corrupt framing could smuggle through as a valid
/// request).
pub fn decode_request(buf: &[u8]) -> Option<(u16, Nanos, u64)> {
    if buf.len() != REQUEST_BYTES {
        return None;
    }
    let class = u16::from_le_bytes(buf[0..2].try_into().ok()?);
    let service = u64::from_le_bytes(buf[2..10].try_into().ok()?);
    let tag = u64::from_le_bytes(buf[10..18].try_into().ok()?);
    Some((class, Nanos::from_nanos(service), tag))
}

/// Encodes a response datagram.
pub fn encode_response(tag: u64, sojourn: Nanos, quanta: u64) -> [u8; RESPONSE_BYTES] {
    let mut buf = [0u8; RESPONSE_BYTES];
    buf[0..8].copy_from_slice(&tag.to_le_bytes());
    buf[8..16].copy_from_slice(&sojourn.as_nanos().to_le_bytes());
    buf[16..24].copy_from_slice(&quanta.to_le_bytes());
    buf
}

/// Decodes a response datagram; `None` if malformed (exact length only,
/// like [`decode_request`]).
pub fn decode_response(buf: &[u8]) -> Option<(u64, Nanos, u64)> {
    if buf.len() != RESPONSE_BYTES {
        return None;
    }
    let tag = u64::from_le_bytes(buf[0..8].try_into().ok()?);
    let sojourn = u64::from_le_bytes(buf[8..16].try_into().ok()?);
    let quanta = u64::from_le_bytes(buf[16..24].try_into().ok()?);
    Some((tag, Nanos::from_nanos(sojourn), quanta))
}

/// Socket serving-loop configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Most requests admitted but not yet answered at any instant; a
    /// well-formed request arriving at the bound is shed. Bounds the
    /// slab (and the server's queues as seen from the wire).
    pub max_in_flight: usize,
    /// Idle backoff, mirroring the worker loop's contract: consecutive
    /// empty poll iterations spent spinning before yielding.
    pub idle_spins: u32,
    /// Empty iterations spent yielding before sleeping.
    pub idle_yields: u32,
    /// Sleep length once spins and yields are exhausted — the worst-case
    /// added latency for a datagram arriving at a deeply idle server.
    pub idle_sleep: Nanos,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_in_flight: 8192,
            idle_spins: 64,
            idle_yields: 64,
            idle_sleep: Nanos::from_micros(50),
        }
    }
}

/// Statistics of a finished serving session. Every received datagram is
/// in exactly one of the three outcome buckets:
/// `received == responded + malformed + shed`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams received (well-formed or not).
    pub received: u64,
    /// Responses sent.
    pub responded: u64,
    /// Malformed datagrams dropped (wrong length).
    pub malformed: u64,
    /// Well-formed requests shed: in-flight bound reached, or arrival
    /// after a stop was requested.
    pub shed: u64,
    /// Highest in-flight occupancy observed.
    pub max_in_flight: u64,
    /// The transport's syscall/frame counters.
    pub transport: TransportStats,
}

impl NetStats {
    /// Drops by named reason, for the conservation ledger.
    pub fn drops(&self) -> Vec<(DropReason, u64)> {
        let mut drops = Vec::new();
        if self.malformed > 0 {
            drops.push((DropReason::Malformed, self.malformed));
        }
        if self.shed > 0 {
            drops.push((DropReason::NetShed, self.shed));
        }
        drops
    }

    /// Audits the session ledger: datagram conservation
    /// (`received == responded + malformed + shed`) and agreement with
    /// the transport's frame counters.
    pub fn audit(&self) -> AuditReport {
        let mut a = InvariantAuditor::new("net");
        a.check_conservation(self.received, self.responded, &self.drops());
        a.check(
            "net_recv_frames_agree",
            self.transport.recv_frames == self.received,
            || {
                format!(
                    "transport received {} frames but the loop accounted {}",
                    self.transport.recv_frames, self.received
                )
            },
        );
        a.check(
            "net_send_frames_agree",
            self.transport.send_frames == self.responded,
            || {
                format!(
                    "transport sent {} frames but the loop responded {}",
                    self.transport.send_frames, self.responded
                )
            },
        );
        a.finish()
    }
}

/// What [`serve`] returns: the session ledger plus the shut-down
/// server's internal statistics (and audit report, if enabled).
#[derive(Debug)]
pub struct ServeOutcome {
    /// The socket session's ledger.
    pub net: NetStats,
    /// The server's dispatcher/worker counters and optional audit
    /// report, exactly as [`TinyQuanta::shutdown_with_stats`] returns
    /// them.
    pub server: ServerStats,
}

/// In-flight bookkeeping (`JobId` → client `tag`/`addr`), exploiting the
/// server's *sequential* id assignment: slot `id & (capacity-1)` in a
/// preallocated power-of-two table. Collisions are only possible when
/// two in-flight ids are ≥ `capacity` apart (a straggler pinned while
/// the id stream laps it), in which case the table doubles — amortized
/// O(1), zero steady-state allocation, no hashing. Replaces the old
/// per-request `HashMap` entry (hash + allocate per request).
#[derive(Debug)]
pub struct InFlightSlab {
    slots: Vec<Option<(u64, u64, SocketAddr)>>, // (id, tag, addr)
    len: usize,
}

impl InFlightSlab {
    /// A slab with at least `capacity` slots (rounded up to a power of
    /// two).
    pub fn with_capacity(capacity: usize) -> InFlightSlab {
        let cap = capacity.max(2).next_power_of_two();
        InFlightSlab {
            slots: vec![None; cap],
            len: 0,
        }
    }

    /// Entries currently in flight.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot(&self, id: u64) -> usize {
        (id as usize) & (self.slots.len() - 1)
    }

    /// Records an in-flight job.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present (the server never reissues an
    /// id).
    pub fn insert(&mut self, id: u64, tag: u64, addr: SocketAddr) {
        loop {
            let s = self.slot(id);
            match self.slots[s] {
                None => {
                    self.slots[s] = Some((id, tag, addr));
                    self.len += 1;
                    return;
                }
                Some((other, _, _)) => {
                    assert_ne!(other, id, "JobId {id} inserted twice");
                    // A straggler more than `capacity` ids old still
                    // occupies this slot: double and re-home everything.
                    self.grow();
                }
            }
        }
    }

    /// Removes and returns the entry for `id`, if present.
    pub fn remove(&mut self, id: u64) -> Option<(u64, SocketAddr)> {
        let s = self.slot(id);
        match self.slots[s] {
            Some((stored, tag, addr)) if stored == id => {
                self.slots[s] = None;
                self.len -= 1;
                Some((tag, addr))
            }
            _ => None,
        }
    }

    fn grow(&mut self) {
        let mut bigger = InFlightSlab {
            slots: vec![None; self.slots.len() * 2],
            len: 0,
        };
        for slot in self.slots.drain(..).flatten() {
            let (id, tag, addr) = slot;
            // Re-homing cannot collide: all ids were distinct.
            let s = (id as usize) & (bigger.slots.len() - 1);
            debug_assert!(bigger.slots[s].is_none());
            bigger.slots[s] = Some((id, tag, addr));
            bigger.len += 1;
        }
        *self = bigger;
    }
}

/// Serves `server` over `transport` until `stop` is set *and* every
/// admitted request has been answered, then shuts the server down.
/// Returns the session ledger and the server's statistics.
///
/// The loop runs in the calling thread; spawn it yourself if you need it
/// in the background (see `examples/udp_server.rs`). See the module docs
/// for the burst pipeline and the backpressure/drain contract.
///
/// # Errors
///
/// Propagates transport errors (the server is still shut down cleanly
/// first).
pub fn serve<T: Transport>(
    server: TinyQuanta,
    transport: &mut T,
    stop: &AtomicBool,
    config: &NetConfig,
) -> io::Result<ServeOutcome> {
    /// Full receive batches drained back-to-back per poll iteration.
    /// With the completion-driven io_uring transport the kernel keeps
    /// filling the armed receive pool *while* the loop decodes and
    /// submits, so going straight back for the backlog overlaps
    /// submission with reception; the bound keeps completions (and the
    /// response flush) from starving under sustained overload.
    const RECV_ROUNDS_PER_POLL: usize = 4;

    let burst = transport.max_batch().max(1);
    let mut stats = NetStats::default();
    let mut rx: Vec<Frame> = vec![Frame::empty(); burst];
    let mut tx: Vec<Frame> = Vec::with_capacity(burst.max(256));
    let mut submit: Vec<(u16, Nanos)> = Vec::with_capacity(burst);
    let mut meta: Vec<(u64, SocketAddr)> = Vec::with_capacity(burst);
    let mut completions: Vec<Completion> = Vec::with_capacity(1024);
    let mut slab = InFlightSlab::with_capacity(config.max_in_flight.clamp(64, 8192));
    let mut idle_iters: u32 = 0;

    let result = 'serve: loop {
        // Read `stop` before receiving: every datagram drained after this
        // sees a consistent stopping decision, and any datagram racing in
        // after a `true` load is picked up by the next iteration's recv
        // (the loop only breaks once the *slab* is empty, after a recv
        // that returned nothing admissible).
        let stopping = stop.load(Ordering::Acquire);
        let mut received = 0usize;
        for _ in 0..RECV_ROUNDS_PER_POLL {
            let n = match transport.recv_batch(&mut rx) {
                Ok(n) => n,
                Err(e) => break 'serve Err(e),
            };
            stats.received += n as u64;
            received += n;
            submit.clear();
            meta.clear();
            for f in &rx[..n] {
                match decode_request(f.payload()) {
                    None => stats.malformed += 1,
                    Some((class, service, tag)) => {
                        if stopping || slab.len() + submit.len() >= config.max_in_flight {
                            stats.shed += 1;
                        } else {
                            submit.push((class, service));
                            meta.push((tag, f.addr));
                        }
                    }
                }
            }
            if !submit.is_empty() {
                // One burst: one clock read, one id-range reservation,
                // one dispatcher snapshot downstream. A dispatcher that
                // died mid-service is an error to report after draining,
                // not a panic inside the serving thread.
                let Some(first) = server.try_submit_burst(&submit) else {
                    break 'serve Err(io::Error::other("dispatcher exited while serving"));
                };
                let first = first.0;
                for (i, &(tag, addr)) in meta.iter().enumerate() {
                    slab.insert(first + i as u64, tag, addr);
                }
                stats.max_in_flight = stats.max_in_flight.max(slab.len() as u64);
            }
            if n < burst {
                break; // backlog drained; don't poll an empty queue again
            }
        }
        completions.clear();
        server.drain_completions_into(&mut completions);
        if !completions.is_empty() {
            tx.clear();
            for c in &completions {
                let (tag, addr) = slab
                    .remove(c.id.0)
                    .expect("every completion has an in-flight entry");
                tx.push(Frame::new(
                    &encode_response(tag, c.sojourn(), c.quanta),
                    addr,
                ));
            }
            // One coalesced flush per poll iteration — in *both*
            // transport modes the loop hands the whole burst down at
            // once (the fallback loops internally; it no longer hides a
            // per-completion send in the delivery path).
            if let Err(e) = transport.send_batch(&tx) {
                break Err(e);
            }
            stats.responded += tx.len() as u64;
        }
        if stopping && slab.is_empty() {
            break Ok(());
        }
        // Idle backoff (spin → yield → sleep), mirroring the worker
        // loop: a hot serving loop answers in microseconds, an idle one
        // must not monopolize an oversubscribed host.
        if received == 0 && completions.is_empty() {
            idle_iters += 1;
            if idle_iters <= config.idle_spins {
                std::hint::spin_loop();
            } else if idle_iters <= config.idle_spins + config.idle_yields {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_nanos(
                    config.idle_sleep.as_nanos().max(1),
                ));
            }
        } else {
            idle_iters = 0;
        }
    };

    // Shut the server down whatever happened above; on the clean path
    // the slab is empty, so remaining completions (from jobs submitted
    // by other handles, if any) have no wire destination and are
    // dropped here by construction — `shutdown_with_stats` still
    // accounts them in the server's own ledger.
    let (rest, server_stats) = server.shutdown_with_stats();
    if result.is_ok() {
        tx.clear();
        for c in &rest {
            if let Some((tag, addr)) = slab.remove(c.id.0) {
                tx.push(Frame::new(
                    &encode_response(tag, c.sojourn(), c.quanta),
                    addr,
                ));
            }
        }
        if !tx.is_empty() {
            transport.send_batch(&tx)?;
            stats.responded += tx.len() as u64;
        }
    }
    stats.transport = transport.stats();
    result.map(|()| ServeOutcome {
        net: stats,
        server: server_stats,
    })
}

/// Serves `server` over `socket` with the batched UDP transport and
/// default [`NetConfig`] until `stop` is set and all in-flight work has
/// drained — the convenience wrapper the examples and tests use.
///
/// # Errors
///
/// Propagates socket errors.
pub fn serve_udp(
    server: TinyQuanta,
    socket: UdpSocket,
    stop: Arc<AtomicBool>,
) -> io::Result<NetStats> {
    let mut transport = UdpTransport::batched(socket)?;
    serve(server, &mut transport, &stop, &NetConfig::default()).map(|o| o.net)
}

/// Builds the best server-side transport the host supports: io_uring
/// when the startup capability probe validated it (receive pool sized
/// against the config's in-flight bound, so the armed SQE depth covers
/// everything the admission control will let in), the batched
/// `recvmmsg`/`sendmmsg` transport otherwise. The choice is observable
/// through [`Transport::label`]; callers that need the fallback *reason*
/// print [`crate::uring::probe`]'s summary.
///
/// # Errors
///
/// Propagates socket/ring setup errors (a probe-validated host failing
/// ring setup for this particular socket is a real error, not a
/// fallback case).
pub fn server_transport(
    socket: UdpSocket,
    config: &NetConfig,
) -> io::Result<Box<dyn Transport + Send>> {
    let caps = crate::uring::probe();
    if caps.available {
        // Depth covers the admission bound plus one burst of slack so a
        // full slab still leaves armed receives for the datagrams that
        // will be shed; `UringConfig` clamps to its own 1..=1024 range.
        let pool = config.max_in_flight.saturating_add(MAX_BATCH).min(1024);
        let transport = crate::uring::IoUringTransport::server_with(
            socket,
            crate::uring::UringConfig {
                mode: crate::uring::UringMode::Auto,
                recv_pool: pool,
                send_pool: pool,
            },
        )?;
        Ok(Box::new(transport))
    } else {
        Ok(Box::new(UdpTransport::batched(socket)?))
    }
}

/// Serves `server` over the probe-selected transport (io_uring where
/// available, batched mmsg otherwise — see [`server_transport`]) until
/// `stop` is set and all in-flight work has drained.
///
/// # Errors
///
/// Propagates socket/ring errors.
pub fn serve_auto(
    server: TinyQuanta,
    socket: UdpSocket,
    stop: Arc<AtomicBool>,
) -> io::Result<NetStats> {
    let mut transport = server_transport(socket, &NetConfig::default())?;
    serve(server, &mut transport, &stop, &NetConfig::default()).map(|o| o.net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServerConfig, SpinJob, TscClock};
    use std::time::Duration;

    #[test]
    fn wire_format_round_trips() {
        let req = encode_request(3, Nanos::from_micros(7), 0xDEAD_BEEF);
        assert_eq!(
            decode_request(&req),
            Some((3, Nanos::from_micros(7), 0xDEAD_BEEF))
        );
        let resp = encode_response(0xDEAD_BEEF, Nanos::from_micros(11), 4);
        assert_eq!(
            decode_response(&resp),
            Some((0xDEAD_BEEF, Nanos::from_micros(11), 4))
        );
    }

    #[test]
    fn truncated_datagrams_rejected() {
        let req = encode_request(1, Nanos::from_micros(1), 7);
        for n in 0..REQUEST_BYTES {
            assert_eq!(decode_request(&req[..n]), None, "len {n} accepted");
        }
        let resp = encode_response(7, Nanos::from_micros(1), 1);
        for n in 0..RESPONSE_BYTES {
            assert_eq!(decode_response(&resp[..n]), None, "len {n} accepted");
        }
    }

    #[test]
    fn oversized_datagrams_rejected() {
        // Exactly-sized frames with trailing garbage must NOT decode:
        // pre-fix, any length >= the message size was accepted.
        let mut req = [0u8; REQUEST_BYTES + 1];
        req[..REQUEST_BYTES].copy_from_slice(&encode_request(1, Nanos::from_micros(1), 7));
        assert_eq!(decode_request(&req), None, "oversized request accepted");
        let mut resp = [0u8; RESPONSE_BYTES + 8];
        resp[..RESPONSE_BYTES].copy_from_slice(&encode_response(7, Nanos::from_micros(1), 1));
        assert_eq!(decode_response(&resp), None, "oversized response accepted");
    }

    #[test]
    fn exact_frames_accepted() {
        assert!(decode_request(&encode_request(0, Nanos::ZERO, 0)).is_some());
        assert!(decode_response(&encode_response(0, Nanos::ZERO, 0)).is_some());
    }

    #[test]
    fn slab_insert_remove_round_trip() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let mut slab = InFlightSlab::with_capacity(64);
        for id in 0..50u64 {
            slab.insert(id, id * 10, addr);
        }
        assert_eq!(slab.len(), 50);
        for id in (0..50u64).rev() {
            assert_eq!(slab.remove(id), Some((id * 10, addr)));
        }
        assert!(slab.is_empty());
        assert_eq!(slab.remove(7), None, "double remove");
    }

    #[test]
    fn slab_grows_past_straggler_collisions() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let mut slab = InFlightSlab::with_capacity(4);
        // Id 0 stays in flight while the id stream laps the table
        // multiple times: every lap would collide without growth.
        slab.insert(0, 1000, addr);
        for id in 1..1000u64 {
            slab.insert(id, id, addr);
            if id >= 3 {
                assert_eq!(slab.remove(id - 2), Some((id - 2, addr)));
            }
        }
        assert_eq!(slab.remove(0), Some((1000, addr)), "straggler survives growth");
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn slab_rejects_duplicate_ids() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let mut slab = InFlightSlab::with_capacity(8);
        slab.insert(3, 1, addr);
        slab.insert(3, 2, addr);
    }

    fn spin_server(workers: usize) -> TinyQuanta {
        let clock = TscClock::calibrated();
        TinyQuanta::start_with_clock(
            ServerConfig {
                workers,
                quantum: Nanos::from_micros(10),
                ..ServerConfig::default()
            },
            clock.clone(),
            move |req| Box::new(SpinJob::with_clock(req, &clock)),
        )
    }

    #[test]
    fn udp_round_trip_against_live_server() {
        let server = spin_server(1);
        let srv_sock = UdpSocket::bind("127.0.0.1:0").expect("bind server");
        let srv_addr = srv_sock.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || serve_udp(server, srv_sock, stop2));

        let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let n = 32u64;
        for tag in 0..n {
            let req = encode_request((tag % 2) as u16, Nanos::from_micros(5), tag);
            client.send_to(&req, srv_addr).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        let mut buf = [0u8; 64];
        while seen.len() < n as usize {
            let (len, _) = client.recv_from(&mut buf).expect("response");
            let (tag, sojourn, quanta) = decode_response(&buf[..len]).expect("well-formed");
            assert!(tag < n);
            assert!(sojourn >= Nanos::from_micros(3), "sojourn {sojourn}");
            assert!(quanta >= 1);
            seen.insert(tag);
        }
        stop.store(true, Ordering::Release);
        let stats = handle.join().unwrap().expect("serve ok");
        assert_eq!(stats.received, n);
        assert_eq!(stats.responded, n);
        assert_eq!(stats.malformed, 0);
        assert_eq!(stats.shed, 0);
        let report = stats.audit();
        assert!(report.is_clean(), "net audit: {report}");
    }

    #[test]
    fn auto_transport_round_trip_against_live_server() {
        // On io_uring-capable hosts this exercises the full serve loop
        // over the completion-driven transport; elsewhere it degrades to
        // a second batched-mmsg round trip (the fallback is the point).
        let caps = crate::uring::probe();
        println!("server_transport probe: {}", caps.summary());
        let server = spin_server(1);
        let srv_sock = UdpSocket::bind("127.0.0.1:0").expect("bind server");
        let srv_addr = srv_sock.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || serve_auto(server, srv_sock, stop2));

        let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let n = 48u64;
        for tag in 0..n {
            let req = encode_request((tag % 2) as u16, Nanos::from_micros(2), tag);
            client.send_to(&req, srv_addr).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        let mut buf = [0u8; 64];
        while seen.len() < n as usize {
            let (len, _) = match client.recv_from(&mut buf) {
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                r => r.expect("response"),
            };
            let (tag, _, _) = decode_response(&buf[..len]).expect("well-formed");
            seen.insert(tag);
        }
        stop.store(true, Ordering::Release);
        let stats = handle.join().unwrap().expect("serve ok");
        assert_eq!(stats.received, n);
        assert_eq!(stats.responded, n);
        if caps.available {
            assert!(
                stats.transport.rcvbuf_bytes > 0,
                "achieved socket buffer sizes flow through the uring transport"
            );
        }
        let report = stats.audit();
        assert!(report.is_clean(), "net audit: {report}");
    }

    #[test]
    fn malformed_and_oversized_datagrams_are_counted_not_parsed() {
        let server = spin_server(1);
        let srv_sock = UdpSocket::bind("127.0.0.1:0").expect("bind server");
        let srv_addr = srv_sock.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || serve_udp(server, srv_sock, stop2));

        let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // One valid, one truncated, one oversized (valid prefix + junk).
        client.send_to(&[1, 2, 3], srv_addr).unwrap();
        let mut oversized = [0u8; REQUEST_BYTES + 4];
        oversized[..REQUEST_BYTES]
            .copy_from_slice(&encode_request(0, Nanos::from_micros(1), 99));
        client.send_to(&oversized, srv_addr).unwrap();
        client
            .send_to(&encode_request(0, Nanos::from_micros(1), 7), srv_addr)
            .unwrap();

        let mut buf = [0u8; 64];
        let (len, _) = client.recv_from(&mut buf).expect("response to the valid one");
        let (tag, _, _) = decode_response(&buf[..len]).expect("well-formed");
        assert_eq!(tag, 7, "only the exact-length request is served");
        stop.store(true, Ordering::Release);
        let stats = handle.join().unwrap().expect("serve ok");
        assert_eq!(stats.received, 3);
        assert_eq!(stats.responded, 1);
        assert_eq!(stats.malformed, 2);
        assert!(stats.audit().is_clean());
    }
}
