//! A UDP front-end for the server.
//!
//! The paper's client "transmits requests … over UDP" (§5.1). This module
//! provides the matching wire interface: a receive loop that parses
//! datagrams into submissions, and response delivery straight back to the
//! client's source address — workers' completions bypass the dispatcher
//! exactly as §3.2 prescribes (the serve loop plays the per-worker TX
//! queues' role, since worker threads must not block on sockets).
//!
//! ## Wire format
//!
//! Request datagram (little-endian): `class: u16 | service_ns: u64 |
//! tag: u64` — 18 bytes. Response: `tag: u64 | sojourn_ns: u64 |
//! quanta: u64` — 24 bytes. The tag is opaque to the server and lets the
//! client match responses to requests.

use crate::server::{Completion, TinyQuanta};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tq_core::Nanos;

/// Size of a request datagram.
pub const REQUEST_BYTES: usize = 18;
/// Size of a response datagram.
pub const RESPONSE_BYTES: usize = 24;

/// Encodes a request datagram.
pub fn encode_request(class: u16, service: Nanos, tag: u64) -> [u8; REQUEST_BYTES] {
    let mut buf = [0u8; REQUEST_BYTES];
    buf[0..2].copy_from_slice(&class.to_le_bytes());
    buf[2..10].copy_from_slice(&service.as_nanos().to_le_bytes());
    buf[10..18].copy_from_slice(&tag.to_le_bytes());
    buf
}

/// Decodes a request datagram; `None` if malformed.
pub fn decode_request(buf: &[u8]) -> Option<(u16, Nanos, u64)> {
    if buf.len() < REQUEST_BYTES {
        return None;
    }
    let class = u16::from_le_bytes(buf[0..2].try_into().ok()?);
    let service = u64::from_le_bytes(buf[2..10].try_into().ok()?);
    let tag = u64::from_le_bytes(buf[10..18].try_into().ok()?);
    Some((class, Nanos::from_nanos(service), tag))
}

/// Encodes a response datagram.
pub fn encode_response(tag: u64, sojourn: Nanos, quanta: u64) -> [u8; RESPONSE_BYTES] {
    let mut buf = [0u8; RESPONSE_BYTES];
    buf[0..8].copy_from_slice(&tag.to_le_bytes());
    buf[8..16].copy_from_slice(&sojourn.as_nanos().to_le_bytes());
    buf[16..24].copy_from_slice(&quanta.to_le_bytes());
    buf
}

/// Decodes a response datagram; `None` if malformed.
pub fn decode_response(buf: &[u8]) -> Option<(u64, Nanos, u64)> {
    if buf.len() < RESPONSE_BYTES {
        return None;
    }
    let tag = u64::from_le_bytes(buf[0..8].try_into().ok()?);
    let sojourn = u64::from_le_bytes(buf[8..16].try_into().ok()?);
    let quanta = u64::from_le_bytes(buf[16..24].try_into().ok()?);
    Some((tag, Nanos::from_nanos(sojourn), quanta))
}

/// Statistics of a finished UDP serving session.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UdpStats {
    /// Requests received and submitted.
    pub received: u64,
    /// Responses sent.
    pub responded: u64,
    /// Malformed datagrams dropped.
    pub malformed: u64,
}

/// Serves `server` over the given UDP socket until `stop` is set *and*
/// all in-flight jobs have been answered. Returns session statistics and
/// the shut-down server's remaining completions (normally empty — they
/// were all answered over the wire).
///
/// The loop runs in the calling thread; spawn it yourself if you need it
/// in the background (see `examples/udp_server.rs`).
///
/// # Errors
///
/// Propagates socket errors other than timeouts.
pub fn serve_udp(
    server: TinyQuanta,
    socket: UdpSocket,
    stop: Arc<AtomicBool>,
) -> io::Result<UdpStats> {
    socket.set_read_timeout(Some(Duration::from_millis(1)))?;
    let mut stats = UdpStats::default();
    let mut buf = [0u8; 64];
    // tag/addr of each in-flight job, keyed by the server-assigned id.
    let mut in_flight: HashMap<u64, (u64, SocketAddr)> = HashMap::new();

    let deliver =
        |completions: Vec<Completion>,
         in_flight: &mut HashMap<u64, (u64, SocketAddr)>,
         stats: &mut UdpStats|
         -> io::Result<()> {
            for c in completions {
                if let Some((tag, addr)) = in_flight.remove(&c.id.0) {
                    let resp = encode_response(tag, c.sojourn(), c.quanta);
                    socket.send_to(&resp, addr)?;
                    stats.responded += 1;
                }
            }
            Ok(())
        };

    loop {
        match socket.recv_from(&mut buf) {
            Ok((n, addr)) => match decode_request(&buf[..n]) {
                Some((class, service, tag)) => {
                    let id = server.submit(class, service);
                    in_flight.insert(id.0, (tag, addr));
                    stats.received += 1;
                }
                None => stats.malformed += 1,
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
        deliver(server.drain_completions(), &mut in_flight, &mut stats)?;
        if stop.load(Ordering::Acquire) && in_flight.is_empty() {
            break;
        }
    }
    // Drain whatever completed between the last poll and shutdown.
    let rest = server.shutdown();
    deliver(rest, &mut in_flight, &mut stats)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServerConfig, SpinJob, TscClock};

    #[test]
    fn wire_format_round_trips() {
        let req = encode_request(3, Nanos::from_micros(7), 0xDEAD_BEEF);
        assert_eq!(
            decode_request(&req),
            Some((3, Nanos::from_micros(7), 0xDEAD_BEEF))
        );
        let resp = encode_response(0xDEAD_BEEF, Nanos::from_micros(11), 4);
        assert_eq!(
            decode_response(&resp),
            Some((0xDEAD_BEEF, Nanos::from_micros(11), 4))
        );
    }

    #[test]
    fn malformed_datagrams_rejected() {
        assert_eq!(decode_request(&[0u8; 5]), None);
        assert_eq!(decode_response(&[0u8; 10]), None);
    }

    #[test]
    fn udp_round_trip_against_live_server() {
        let clock = TscClock::calibrated();
        let server = TinyQuanta::start(
            ServerConfig {
                workers: 1,
                quantum: Nanos::from_micros(10),
                ..ServerConfig::default()
            },
            move |req| Box::new(SpinJob::with_clock(req, &clock)),
        );
        let srv_sock = UdpSocket::bind("127.0.0.1:0").expect("bind server");
        let srv_addr = srv_sock.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || serve_udp(server, srv_sock, stop2));

        let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let n = 32u64;
        for tag in 0..n {
            let req = encode_request((tag % 2) as u16, Nanos::from_micros(5), tag);
            client.send_to(&req, srv_addr).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        let mut buf = [0u8; 64];
        while seen.len() < n as usize {
            let (len, _) = client.recv_from(&mut buf).expect("response");
            let (tag, sojourn, quanta) = decode_response(&buf[..len]).expect("well-formed");
            assert!(tag < n);
            assert!(sojourn >= Nanos::from_micros(3), "sojourn {sojourn}");
            assert!(quanta >= 1);
            seen.insert(tag);
        }
        stop.store(true, Ordering::Release);
        let stats = handle.join().unwrap().expect("serve ok");
        assert_eq!(stats.received, n);
        assert_eq!(stats.responded, n);
        assert_eq!(stats.malformed, 0);
    }
}
