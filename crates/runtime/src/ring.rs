//! Lock-free single-producer single-consumer rings.
//!
//! The dispatcher forwards each request "to the least loaded worker via a
//! lockless ring buffer" (§4). One producer (the dispatcher thread) and
//! one consumer (the worker's scheduler loop) share a fixed-capacity
//! Lamport queue; head and tail live on separate cache lines so the two
//! sides never false-share.

use crossbeam::utils::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Next slot the producer writes (monotonically increasing).
    tail: CachePadded<AtomicUsize>,
    /// Next slot the consumer reads.
    head: CachePadded<AtomicUsize>,
}

// SAFETY: the ring transfers T values between exactly two threads; every
// slot is written by the producer before the tail release-store makes it
// visible, and read by the consumer before the head release-store recycles
// it. T only needs Send.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // By the time the last Arc drops, both sides are gone: we have
        // exclusive access and may drain undelivered items.
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        for i in head..tail {
            let slot = &self.buf[i % self.cap];
            // SAFETY: slots in [head, tail) hold initialized values.
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

/// Producer half; owned by the dispatcher.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half; owned by a worker.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer").field("cap", &self.shared.cap).finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer").field("cap", &self.shared.cap).finish()
    }
}

impl<T> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spsc").field("cap", &self.cap).finish()
    }
}

/// Creates a ring holding up to `cap` in-flight items.
///
/// # Panics
///
/// Panics if `cap` is zero.
pub fn spsc<T: Send>(cap: usize) -> (Producer<T>, Consumer<T>) {
    assert!(cap > 0, "ring capacity must be positive");
    let shared = Arc::new(Shared {
        buf: (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        cap,
        tail: CachePadded::new(AtomicUsize::new(0)),
        head: CachePadded::new(AtomicUsize::new(0)),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

impl<T: Send> Producer<T> {
    /// Enqueues `item`, or returns it if the ring is full (backpressure —
    /// the dispatcher retries, which is what bounds worker queues).
    pub fn push(&self, item: T) -> Result<(), T> {
        let s = &*self.shared;
        let tail = s.tail.load(Ordering::Relaxed);
        let head = s.head.load(Ordering::Acquire);
        if tail - head == s.cap {
            return Err(item);
        }
        let slot = &s.buf[tail % s.cap];
        // SAFETY: slot index `tail` is not visible to the consumer until
        // the release store below, and the producer is unique.
        unsafe { (*slot.get()).write(item) };
        s.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Items currently in flight.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail.load(Ordering::Relaxed) - s.head.load(Ordering::Acquire)
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> Consumer<T> {
    /// Dequeues the oldest item, if any.
    pub fn pop(&self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed);
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &s.buf[head % s.cap];
        // SAFETY: the producer's release store published this slot; the
        // consumer is unique, and the release store below recycles it.
        let item = unsafe { (*slot.get()).assume_init_read() };
        s.head.store(head + 1, Ordering::Release);
        Some(item)
    }

    /// Items currently in flight.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail.load(Ordering::Acquire) - s.head.load(Ordering::Relaxed)
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (p, c) = spsc(8);
        for i in 0..5 {
            p.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn full_ring_rejects_and_recovers() {
        let (p, c) = spsc(2);
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.push(3), Err(3));
        assert_eq!(c.pop(), Some(1));
        p.push(3).unwrap();
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), Some(3));
    }

    #[test]
    fn wraps_around_many_times() {
        let (p, c) = spsc(4);
        for i in 0..10_000u64 {
            p.push(i).unwrap();
            assert_eq!(c.pop(), Some(i));
        }
    }

    #[test]
    fn len_tracks_in_flight() {
        let (p, c) = spsc(4);
        assert!(p.is_empty() && c.is_empty());
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(c.len(), 2);
        c.pop();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn cross_thread_transfer_is_lossless() {
        let (p, c) = spsc(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut item = i;
                loop {
                    match p.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, expected, "items must arrive in order");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn undelivered_items_are_dropped_not_leaked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (p, c) = spsc(8);
            p.push(Counted).unwrap();
            p.push(Counted).unwrap();
            drop(c.pop()); // one delivered and dropped
            drop((p, c)); // one still in the ring
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }
}
