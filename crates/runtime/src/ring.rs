//! Lock-free single-producer single-consumer rings.
//!
//! The dispatcher forwards each request "to the least loaded worker via a
//! lockless ring buffer" (§4). One producer (the dispatcher thread) and
//! one consumer (the worker's scheduler loop) share a fixed-capacity
//! Lamport queue; head and tail live on separate cache lines so the two
//! sides never false-share.
//!
//! ## Cached positions and batched transfer
//!
//! Each side keeps a private *cached* copy of the other side's index
//! (producer caches the consumer's head, consumer caches the producer's
//! tail). The cache is a lower bound on the true value — both indices
//! only grow — so it is always safe to act on: the producer refreshes its
//! cached head with an `Acquire` load only when the cache says the ring
//! is full, and the consumer refreshes its cached tail only when the
//! cache says the ring is empty. A burst of pushes or pops therefore
//! costs one `Acquire` refresh and one `Release` publish per *burst*
//! instead of per item ([`Producer::push_batch`]/[`Consumer::pop_batch`]),
//! and even the single-item ops skip the cross-core load entirely while
//! the cache has slack. The protocol (including stale cached positions)
//! is model-checked exhaustively in `tests/ring_interleavings.rs`.

use crossbeam::utils::CachePadded;
use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Next slot the producer writes (monotonically increasing).
    tail: CachePadded<AtomicUsize>,
    /// Next slot the consumer reads.
    head: CachePadded<AtomicUsize>,
}

// SAFETY: the ring transfers T values between exactly two threads; every
// slot is written by the producer before the tail release-store makes it
// visible, and read by the consumer before the head release-store recycles
// it. T only needs Send.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // By the time the last Arc drops, both sides are gone: we have
        // exclusive access and may drain undelivered items.
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        for i in head..tail {
            let slot = &self.buf[i % self.cap];
            // SAFETY: slots in [head, tail) hold initialized values.
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

/// Producer half; owned by the dispatcher. Not `Sync`: the cached head
/// position lives in a `Cell`, which is exactly as single-threaded as
/// the single-producer contract already required.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// The consumer's head as last observed — a lower bound on the true
    /// head, refreshed (one `Acquire` load) only when the ring looks full.
    cached_head: Cell<usize>,
}

/// Consumer half; owned by a worker. Not `Sync` (see [`Producer`]).
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// The producer's tail as last observed — a lower bound on the true
    /// tail, refreshed (one `Acquire` load) only when the ring looks
    /// empty.
    cached_tail: Cell<usize>,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer").field("cap", &self.shared.cap).finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer").field("cap", &self.shared.cap).finish()
    }
}

impl<T> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spsc").field("cap", &self.cap).finish()
    }
}

/// Creates a ring holding up to `cap` in-flight items.
///
/// # Panics
///
/// Panics if `cap` is zero.
pub fn spsc<T: Send>(cap: usize) -> (Producer<T>, Consumer<T>) {
    assert!(cap > 0, "ring capacity must be positive");
    let shared = Arc::new(Shared {
        buf: (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        cap,
        tail: CachePadded::new(AtomicUsize::new(0)),
        head: CachePadded::new(AtomicUsize::new(0)),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            cached_head: Cell::new(0),
        },
        Consumer {
            shared,
            cached_tail: Cell::new(0),
        },
    )
}

impl<T: Send> Producer<T> {
    /// Free slots by the cached head, refreshing the cache (the one
    /// `Acquire` load of the consumer's index) only when it reports
    /// fewer than `want` free slots.
    #[inline]
    fn free_slots(&self, tail: usize, want: usize) -> usize {
        let mut free = self.shared.cap - (tail - self.cached_head.get());
        if free < want {
            self.cached_head
                .set(self.shared.head.load(Ordering::Acquire));
            free = self.shared.cap - (tail - self.cached_head.get());
        }
        free
    }

    /// Enqueues `item`, or returns it if the ring is full (backpressure —
    /// the dispatcher retries, which is what bounds worker queues).
    pub fn push(&self, item: T) -> Result<(), T> {
        let s = &*self.shared;
        let tail = s.tail.load(Ordering::Relaxed);
        if self.free_slots(tail, 1) == 0 {
            return Err(item);
        }
        let slot = &s.buf[tail % s.cap];
        // SAFETY: slot index `tail` is not visible to the consumer until
        // the release store below, and the producer is unique. The cached
        // head is a lower bound on the true head, so `free_slots > 0`
        // guarantees the consumer is done with this slot.
        unsafe { (*slot.get()).write(item) };
        s.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Enqueues a prefix of `items` (in order, from the front), removing
    /// the pushed items from the buffer and returning how many were
    /// pushed. The whole burst costs one `Acquire` refresh of the
    /// consumer's head (at most) and exactly one `Release` publish —
    /// items become visible to the consumer all at once. Returns 0 when
    /// the ring is full (the remainder stays in `items`).
    pub fn push_batch(&self, items: &mut Vec<T>) -> usize {
        let s = &*self.shared;
        if items.is_empty() {
            return 0;
        }
        let tail = s.tail.load(Ordering::Relaxed);
        let n = self.free_slots(tail, items.len()).min(items.len());
        if n == 0 {
            return 0;
        }
        for (i, item) in items.drain(..n).enumerate() {
            let slot = &s.buf[(tail + i) % s.cap];
            // SAFETY: slots [tail, tail + n) are unpublished and — by the
            // free-slot bound — recycled by the consumer.
            unsafe { (*slot.get()).write(item) };
        }
        s.tail.store(tail + n, Ordering::Release);
        n
    }

    /// [`Producer::push_batch`] for `Copy` items: pushes a prefix of the
    /// slice without consuming it, returning how many were pushed. Lets a
    /// caller that still needs the un-pushed suffix (and per-item ids of
    /// the pushed prefix, e.g. for audit logging) avoid a drain.
    pub fn push_batch_copy(&self, items: &[T]) -> usize
    where
        T: Copy,
    {
        let s = &*self.shared;
        if items.is_empty() {
            return 0;
        }
        let tail = s.tail.load(Ordering::Relaxed);
        let n = self.free_slots(tail, items.len()).min(items.len());
        for (i, item) in items[..n].iter().enumerate() {
            let slot = &s.buf[(tail + i) % s.cap];
            // SAFETY: as in `push_batch`.
            unsafe { (*slot.get()).write(*item) };
        }
        if n > 0 {
            s.tail.store(tail + n, Ordering::Release);
        }
        n
    }

    /// Items currently in flight.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail.load(Ordering::Relaxed) - s.head.load(Ordering::Acquire)
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> Consumer<T> {
    /// Items available by the cached tail, refreshing the cache (the one
    /// `Acquire` load of the producer's index) only when it reports none.
    #[inline]
    fn available(&self, head: usize) -> usize {
        let mut avail = self.cached_tail.get() - head;
        if avail == 0 {
            self.cached_tail
                .set(self.shared.tail.load(Ordering::Acquire));
            avail = self.cached_tail.get() - head;
        }
        avail
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed);
        if self.available(head) == 0 {
            return None;
        }
        let slot = &s.buf[head % s.cap];
        // SAFETY: the cached tail is a lower bound on the published tail,
        // so this slot's value is initialized; the consumer is unique,
        // and the release store below recycles it.
        let item = unsafe { (*slot.get()).assume_init_read() };
        s.head.store(head + 1, Ordering::Release);
        Some(item)
    }

    /// Dequeues up to `max` items into `out` (appending, in FIFO order),
    /// returning how many were moved. The whole burst costs one `Acquire`
    /// refresh of the producer's tail (at most) and exactly one `Release`
    /// recycle of the consumed slots.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed);
        let n = self.available(head).min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        for i in 0..n {
            let slot = &s.buf[(head + i) % s.cap];
            // SAFETY: slots [head, head + n) are published (cached tail is
            // a lower bound on the true tail) and not yet recycled.
            out.push(unsafe { (*slot.get()).assume_init_read() });
        }
        s.head.store(head + n, Ordering::Release);
        n
    }

    /// Items currently in flight.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail.load(Ordering::Acquire) - s.head.load(Ordering::Relaxed)
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (p, c) = spsc(8);
        for i in 0..5 {
            p.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn full_ring_rejects_and_recovers() {
        let (p, c) = spsc(2);
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.push(3), Err(3));
        assert_eq!(c.pop(), Some(1));
        p.push(3).unwrap();
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), Some(3));
    }

    #[test]
    fn wraps_around_many_times() {
        let (p, c) = spsc(4);
        for i in 0..10_000u64 {
            p.push(i).unwrap();
            assert_eq!(c.pop(), Some(i));
        }
    }

    #[test]
    fn len_tracks_in_flight() {
        let (p, c) = spsc(4);
        assert!(p.is_empty() && c.is_empty());
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(c.len(), 2);
        c.pop();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn push_batch_fills_to_capacity_and_keeps_remainder() {
        let (p, c) = spsc(4);
        let mut items: Vec<u64> = (0..6).collect();
        assert_eq!(p.push_batch(&mut items), 4);
        assert_eq!(items, vec![4, 5], "unpushed suffix stays in the buffer");
        assert_eq!(p.push_batch(&mut items), 0, "full ring pushes nothing");
        assert_eq!(c.pop(), Some(0));
        assert_eq!(p.push_batch(&mut items), 1);
        assert_eq!(items, vec![5]);
    }

    #[test]
    fn pop_batch_respects_max_and_appends() {
        let (p, c) = spsc(8);
        for i in 0..6 {
            p.push(i).unwrap();
        }
        let mut out = vec![99u64];
        assert_eq!(c.pop_batch(&mut out, 4), 4);
        assert_eq!(out, vec![99, 0, 1, 2, 3]);
        assert_eq!(c.pop_batch(&mut out, 10), 2);
        assert_eq!(out, vec![99, 0, 1, 2, 3, 4, 5]);
        assert_eq!(c.pop_batch(&mut out, 10), 0);
    }

    #[test]
    fn push_batch_copy_pushes_prefix_without_consuming() {
        let (p, c) = spsc(3);
        let items: Vec<u64> = vec![7, 8, 9, 10];
        assert_eq!(p.push_batch_copy(&items), 3);
        assert_eq!(items.len(), 4, "slice variant leaves the buffer intact");
        assert_eq!(c.pop(), Some(7));
        assert_eq!(p.push_batch_copy(&items[3..]), 1);
        assert_eq!(c.pop(), Some(8));
        assert_eq!(c.pop(), Some(9));
        assert_eq!(c.pop(), Some(10));
    }

    /// Mixed single and batched operations on both sides preserve FIFO
    /// order and lose nothing, across thread boundaries, under ring
    /// pressure (capacity far below the transfer size).
    #[test]
    fn cross_thread_mixed_batch_transfer_is_lossless_fifo() {
        let (p, c) = spsc(32);
        const N: u64 = 100_000;
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            let mut buf: Vec<u64> = Vec::new();
            while next < N || !buf.is_empty() {
                // Alternate batch sizes 1..=9, mixing push and push_batch.
                let want = (next % 9 + 1) as usize;
                while buf.len() < want && next < N {
                    buf.push(next);
                    next += 1;
                }
                if buf.len() == 1 {
                    if let Ok(()) = p.push(buf[0]) {
                        buf.clear();
                    }
                } else {
                    p.push_batch(&mut buf);
                }
                std::hint::spin_loop();
            }
        });
        let mut expected = 0u64;
        let mut out: Vec<u64> = Vec::new();
        while expected < N {
            out.clear();
            // Alternate single pops with batched pops of varying size.
            if expected.is_multiple_of(3) {
                if let Some(v) = c.pop() {
                    out.push(v);
                }
            } else {
                c.pop_batch(&mut out, (expected % 7 + 1) as usize);
            }
            for &v in &out {
                assert_eq!(v, expected, "items must arrive in order");
                expected += 1;
            }
            std::hint::spin_loop();
        }
        producer.join().unwrap();
    }

    #[test]
    fn cross_thread_transfer_is_lossless() {
        let (p, c) = spsc(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut item = i;
                loop {
                    match p.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, expected, "items must arrive in order");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn undelivered_items_are_dropped_not_leaked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (p, c) = spsc(8);
            p.push(Counted).unwrap();
            p.push(Counted).unwrap();
            drop(c.pop()); // one delivered and dropped
            drop((p, c)); // one still in the ring
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn batched_undelivered_items_are_dropped_not_leaked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted(#[allow(dead_code)] u8);
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (p, c) = spsc(8);
            let mut batch = vec![Counted(0), Counted(1), Counted(2)];
            assert_eq!(p.push_batch(&mut batch), 3);
            let mut out = Vec::new();
            c.pop_batch(&mut out, 1);
            drop(out); // one delivered and dropped
            drop((p, c)); // two still in the ring
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }
}
