//! The tq-kv GET/SCAN job for the live runtime — the paper's headline
//! application (§5.1): a shared in-memory ordered store serving
//! microsecond GETs mixed with rare, very long SCANs.
//!
//! [`KvJob`] is a real job written against the forced-multitasking API:
//! a SCAN processes entries in small batches and polls
//! [`QuantumCtx::probe`] between batches, saving its cursor when told to
//! yield, so GETs queued behind it never wait more than ~a quantum. (The
//! paper's LLVM pass places these probes automatically in C code; a Rust
//! job expresses them explicitly — see DESIGN.md.)
//!
//! This used to live inside `examples/kv_server.rs`; it moved here so
//! the socket front end (`tq-loadgen`, the net smoke job) and the
//! example serve the *same* workload rather than divergent copies.

use crate::job::{Job, JobStatus, QuantumCtx};
use crate::server::{JobFactory, RtRequest};
use std::sync::Arc;
use tq_kv::KvStore;

/// A GET or SCAN against the shared store, resumable at quantum
/// boundaries.
pub enum KvJob {
    /// A point lookup; far shorter than any quantum, runs to completion.
    Get {
        /// The shared store.
        store: Arc<KvStore>,
        /// The key to fetch.
        key: Vec<u8>,
    },
    /// A long range scan, preemptible between batches.
    Scan {
        /// The shared store.
        store: Arc<KvStore>,
        /// Continuation cursor: next key to read (exclusive resume).
        cursor: Vec<u8>,
        /// Entries left to read.
        remaining: usize,
        /// Bytes checksum, so the scan work is not optimized away.
        checksum: u64,
    },
}

impl std::fmt::Debug for KvJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvJob::Get { .. } => f.write_str("KvJob::Get"),
            KvJob::Scan { remaining, .. } => {
                write!(f, "KvJob::Scan {{ remaining: {remaining} }}")
            }
        }
    }
}

impl Job for KvJob {
    fn run(&mut self, ctx: &mut QuantumCtx) -> JobStatus {
        match self {
            KvJob::Get { store, key } => {
                // A GET is far shorter than any quantum: run to completion
                // (the compiler pass would place its probes so sparsely
                // that none fires).
                let v = store.get(key);
                std::hint::black_box(v.map(<[u8]>::len));
                JobStatus::Done
            }
            KvJob::Scan {
                store,
                cursor,
                remaining,
                checksum,
            } => {
                // Probe between 32-entry batches: the explicit equivalent
                // of TQ's instrumented loop gate.
                const BATCH: usize = 32;
                while *remaining > 0 {
                    let batch = store.scan(cursor, BATCH.min(*remaining));
                    if batch.is_empty() {
                        return JobStatus::Done;
                    }
                    for (k, v) in &batch {
                        *checksum = checksum
                            .wrapping_mul(31)
                            .wrapping_add(v.len() as u64 + k.len() as u64);
                    }
                    *remaining -= batch.len();
                    // Advance the cursor past the last key served.
                    let mut next = batch.last().expect("non-empty").0.to_vec();
                    next.push(0);
                    *cursor = next;
                    if *remaining > 0 && ctx.probe() {
                        return JobStatus::Yielded;
                    }
                }
                std::hint::black_box(*checksum);
                JobStatus::Done
            }
        }
    }
}

/// A populated store for the RocksDB-style experiments: `n_keys` entries
/// of `value_size` bytes, deterministic under `seed`.
pub fn kv_store(seed: u64, n_keys: u64, value_size: usize) -> Arc<KvStore> {
    let mut store = KvStore::new(seed);
    store.populate(n_keys, value_size);
    Arc::new(store)
}

/// The standard job factory over a shared store: class 0 becomes a GET
/// of a key derived from the request id, any other class a SCAN of
/// `scan_len` entries starting at an id-derived cursor. Used by the
/// kv_server example, `tq-loadgen`, and the net tests, so everything
/// downstream of the wire serves the same workload.
pub fn kv_factory(store: Arc<KvStore>, n_keys: u64, scan_len: usize) -> Box<JobFactory> {
    Box::new(move |req: &RtRequest| -> Box<dyn Job> {
        if req.class.0 == 0 {
            Box::new(KvJob::Get {
                store: Arc::clone(&store),
                key: KvStore::nth_key((req.id.0 * 7919) % n_keys.max(1)),
            })
        } else {
            Box::new(KvJob::Scan {
                store: Arc::clone(&store),
                cursor: KvStore::nth_key((req.id.0 * 104_729) % (n_keys / 2).max(1)),
                remaining: scan_len,
                checksum: 0,
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServerConfig, TinyQuanta};
    use tq_core::Nanos;

    #[test]
    fn gets_and_scans_complete_over_the_runtime() {
        let store = kv_store(42, 10_000, 64);
        let factory = kv_factory(Arc::clone(&store), 10_000, 5_000);
        let server = TinyQuanta::start(
            ServerConfig {
                workers: 1,
                quantum: Nanos::from_micros(5),
                ..ServerConfig::default()
            },
            factory,
        );
        for i in 0..100u64 {
            let class = u16::from(i % 50 == 49);
            server.submit(class, Nanos::ZERO);
        }
        let completions = server.shutdown();
        assert_eq!(completions.len(), 100);
        // SCANs must have been preempted at least once: 5k entries at
        // 32-entry probe granularity cannot fit one 5us quantum.
        let scan_quanta = completions
            .iter()
            .filter(|c| c.class.0 == 1)
            .map(|c| c.quanta)
            .max()
            .expect("scans present");
        assert!(scan_quanta > 1, "scan finished in one quantum");
    }

    #[test]
    fn scan_resumes_from_cursor_with_consistent_checksum() {
        let store = kv_store(7, 1_000, 32);
        // Run the same scan once un-preempted and once through the
        // runtime; the checksums must agree (cursor save/restore is
        // lossless).
        let mut reference = KvJob::Scan {
            store: Arc::clone(&store),
            cursor: KvStore::nth_key(0),
            remaining: 500,
            checksum: 0,
        };
        let clock = crate::TscClock::calibrated();
        let mut ctx = QuantumCtx::new(clock.clone());
        ctx.arm(tq_core::Cycles(u64::MAX / 2)); // effectively never expires
        assert!(matches!(reference.run(&mut ctx), JobStatus::Done));
        let want = match reference {
            KvJob::Scan { checksum, .. } => checksum,
            KvJob::Get { .. } => unreachable!(),
        };
        assert_ne!(want, 0);

        // Now force a yield at every probe (zero-length quantum) and
        // check the resumed scan reads exactly the same entries.
        let mut preempted = KvJob::Scan {
            store,
            cursor: KvStore::nth_key(0),
            remaining: 500,
            checksum: 0,
        };
        let mut resumes = 0u32;
        loop {
            ctx.arm(tq_core::Cycles(0)); // already expired: yield ASAP
            match preempted.run(&mut ctx) {
                JobStatus::Yielded => resumes += 1,
                JobStatus::Done => break,
            }
            assert!(resumes < 10_000, "scan not making progress");
        }
        assert!(resumes > 0, "zero-length quantum never preempted");
        let got = match preempted {
            KvJob::Scan { checksum, .. } => checksum,
            KvJob::Get { .. } => unreachable!(),
        };
        assert_eq!(got, want, "preempted scan diverged from reference");
    }
}
