//! # Tiny Quanta runtime
//!
//! The executable TQ system (§3/§4): a dispatcher thread load-balancing
//! incoming requests over worker threads whose scheduler loops interleave
//! *forced-multitasking* job coroutines at microsecond quanta.
//!
//! * [`clock`] — the physical clock: `RDTSC` on x86-64 (calibrated
//!   against wall time), a monotonic fallback elsewhere.
//! * [`ring`] — the lock-free single-producer single-consumer rings the
//!   dispatcher pushes jobs through (§4's "lockless ring buffer").
//! * [`job`] — the stackless-coroutine job model: [`Job::run`] executes
//!   until [`QuantumCtx::probe`] reports quantum expiry, then saves state
//!   and yields (what the paper's LLVM pass automates for C code, a Rust
//!   job expresses with explicit probe points; see DESIGN.md).
//! * [`worker`] — the per-core scheduler coroutine: PS rotation over task
//!   slots, completion counters in a shared cache line.
//! * [`dispatcher`] — JSQ with Maximum-Serviced-Quanta tie-breaking over
//!   the workers' counters.
//! * [`server`] — the [`TinyQuanta`] facade tying it together.
//! * [`transport`] — batched datagram I/O: the [`transport::Transport`]
//!   trait and a UDP implementation moving up to 64 frames per
//!   `recvmmsg`/`sendmmsg` syscall.
//! * [`uring`] — the completion-driven io_uring implementation of the
//!   same trait: mmap'd SQ/CQ rings, registered fixed buffers, and
//!   provided-buffer multishot receive, with a startup capability probe
//!   that degrades feature-by-feature down to the mmsg transport.
//! * [`net`] — the socket front end speaking the paper's client
//!   protocol over a [`transport::Transport`], burst-submitting into the
//!   dispatch pipeline.
//! * [`kv`] — the tq-kv GET/SCAN job used as the served workload in the
//!   end-to-end socket experiments.
//!
//! ## Example
//!
//! ```
//! use tq_runtime::{ServerConfig, TinyQuanta, SpinJob};
//! use tq_core::Nanos;
//!
//! let server = TinyQuanta::start(
//!     ServerConfig {
//!         workers: 2,
//!         quantum: Nanos::from_micros(5),
//!         ..ServerConfig::default()
//!     },
//!     // Job factory: a CPU-spinning job of the requested duration.
//!     |req| Box::new(SpinJob::from_request(req)),
//! );
//! for i in 0..64 {
//!     server.submit(i % 4, Nanos::from_micros(3));
//! }
//! let completions = server.shutdown();
//! assert_eq!(completions.len(), 64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod dispatcher;
pub mod job;
pub mod kv;
pub mod net;
pub mod ring;
pub mod server;
pub mod transport;
pub mod uring;
pub mod worker;

pub use clock::TscClock;
pub use job::{Job, JobStatus, QuantumCtx, SpinJob};
pub use dispatcher::DispatcherStats;
pub use server::{Completion, RtRequest, ServerConfig, ServerStats, TinyQuanta};
pub use worker::WorkerStats;
