//! The forced-multitasking job model.
//!
//! A TQ job is a *stackless coroutine*: [`Job::run`] executes real work,
//! polling [`QuantumCtx::probe`] at probe points; when the probe observes
//! quantum expiry the job saves its progress in `self` and returns
//! [`JobStatus::Yielded`]. The scheduler later calls `run` again and the
//! job resumes where it left off.
//!
//! In the paper these probe points are inserted by an LLVM pass over C
//! code; the Rust toolchain offers no equivalent plug-in point, so a job
//! expresses them directly through this API (the placement *policy* — how
//! sparse probes may be — is studied faithfully in `tq-instrument`).
//! The probe semantics are identical: read the physical clock, compare
//! against the quantum deadline, yield cooperatively.
//!
//! Critical sections are supported the way §4 describes: a flag that
//! makes probes report "keep running" until the section exits.

use crate::clock::TscClock;
use tq_core::Cycles;

/// What a quantum of execution produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Quantum expired; the job saved its state and yielded.
    Yielded,
    /// The job finished; its slot can be recycled.
    Done,
}

/// A preemptible job.
pub trait Job: Send {
    /// Runs until the next probe observes quantum expiry (return
    /// [`JobStatus::Yielded`]) or the work completes (return
    /// [`JobStatus::Done`]). Implementations must call
    /// [`QuantumCtx::probe`] frequently enough to honor the quantum —
    /// the equivalent of being compiled with TQ's pass.
    fn run(&mut self, ctx: &mut QuantumCtx) -> JobStatus;
}

/// Per-quantum execution context handed to jobs: the physical clock, the
/// quantum deadline, and the critical-section flag.
#[derive(Debug)]
pub struct QuantumCtx {
    clock: TscClock,
    deadline: Cycles,
    critical_depth: u32,
    probes: u64,
}

impl QuantumCtx {
    /// Creates a context (one per worker; the deadline is re-armed before
    /// every resume).
    pub fn new(clock: TscClock) -> Self {
        QuantumCtx {
            clock,
            deadline: Cycles::ZERO,
            critical_depth: 0,
            probes: 0,
        }
    }

    /// Arms the deadline for the next quantum (scheduler side).
    pub fn arm(&mut self, quantum_cycles: Cycles) {
        self.deadline = Cycles(self.clock.now().0.wrapping_add(quantum_cycles.0));
    }

    /// The probe: reads the cycle counter and reports whether the job
    /// should yield. Always `false` inside a critical section.
    #[inline]
    pub fn probe(&mut self) -> bool {
        self.probes += 1;
        if self.critical_depth > 0 {
            return false;
        }
        self.clock.now().0.wrapping_sub(self.deadline.0) as i64 >= 0
    }

    /// Enters a critical section: probes stop requesting yields until the
    /// matching [`QuantumCtx::exit_critical`] (§4). Nestable.
    pub fn enter_critical(&mut self) {
        self.critical_depth += 1;
    }

    /// Leaves a critical section.
    ///
    /// # Panics
    ///
    /// Panics if called without a matching [`QuantumCtx::enter_critical`].
    pub fn exit_critical(&mut self) {
        assert!(self.critical_depth > 0, "unbalanced critical section");
        self.critical_depth -= 1;
    }

    /// The clock, for jobs that time their own work.
    pub fn clock(&self) -> &TscClock {
        &self.clock
    }

    /// Probes executed so far (diagnostics).
    pub fn probes(&self) -> u64 {
        self.probes
    }
}

/// A CPU-bound job that spins for a requested service time, probing at a
/// fine grain — the synthetic-workload job used by the examples, tests,
/// and benches (the stand-in for the paper's spin-server requests).
#[derive(Debug)]
pub struct SpinJob {
    remaining_cycles: u64,
    /// Work between probes, in cycles (~50 ns at 2 GHz: far finer than
    /// any quantum, as TQ's instrumentation guarantees).
    grain_cycles: u64,
}

impl SpinJob {
    /// A job that will consume `service_cycles` of CPU.
    pub fn new(service_cycles: Cycles) -> Self {
        SpinJob {
            remaining_cycles: service_cycles.0,
            grain_cycles: 100,
        }
    }

    /// Builds from a server request whose payload carries the service
    /// time in nanoseconds (see [`crate::server::RtRequest::service`]).
    /// Calibrates a process-wide clock once on first use.
    pub fn from_request(req: &crate::server::RtRequest) -> Self {
        static CLOCK: std::sync::OnceLock<TscClock> = std::sync::OnceLock::new();
        let clock = CLOCK.get_or_init(TscClock::calibrated);
        SpinJob::new(clock.to_cycles(req.service))
    }

    /// Builds with the service time converted by the given clock (avoids
    /// re-calibration; preferred inside job factories).
    pub fn with_clock(req: &crate::server::RtRequest, clock: &TscClock) -> Self {
        SpinJob::new(clock.to_cycles(req.service))
    }
}

impl Job for SpinJob {
    fn run(&mut self, ctx: &mut QuantumCtx) -> JobStatus {
        while self.remaining_cycles > 0 {
            // One grain of "work": spin on the cycle counter.
            let start = ctx.clock().now().0;
            let target = self.grain_cycles.min(self.remaining_cycles);
            while ctx.clock().now().0.wrapping_sub(start) < target {
                std::hint::spin_loop();
            }
            self.remaining_cycles -= target;
            if self.remaining_cycles > 0 && ctx.probe() {
                return JobStatus::Yielded;
            }
        }
        JobStatus::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_core::Nanos;

    fn ctx() -> QuantumCtx {
        QuantumCtx::new(TscClock::calibrated())
    }

    #[test]
    fn probe_false_before_deadline_true_after() {
        let mut c = ctx();
        let q = c.clock.to_cycles(Nanos::from_millis(50));
        c.arm(q);
        assert!(!c.probe(), "deadline 50ms away");
        c.arm(Cycles(0));
        // Deadline is "now": the next read must be at or past it.
        assert!(c.probe());
    }

    #[test]
    fn critical_section_suppresses_yields() {
        let mut c = ctx();
        c.arm(Cycles(0));
        c.enter_critical();
        assert!(!c.probe(), "critical section must not yield");
        c.enter_critical();
        c.exit_critical();
        assert!(!c.probe(), "still nested");
        c.exit_critical();
        assert!(c.probe(), "yieldable again");
    }

    #[test]
    #[should_panic(expected = "unbalanced critical section")]
    fn unbalanced_exit_panics() {
        ctx().exit_critical();
    }

    #[test]
    fn spin_job_yields_on_small_quantum_and_finishes() {
        let mut c = ctx();
        let service = c.clock.to_cycles(Nanos::from_micros(200));
        let mut job = SpinJob::new(service);
        let quantum = c.clock.to_cycles(Nanos::from_micros(10));
        let mut quanta = 0;
        loop {
            c.arm(quantum);
            match job.run(&mut c) {
                JobStatus::Yielded => quanta += 1,
                JobStatus::Done => break,
            }
            assert!(quanta < 10_000, "job never finishes");
        }
        // 200µs of work at 10µs quanta: needs many quanta (scheduling
        // noise on a busy CI box allows slack, but ≫ 1).
        assert!(quanta >= 5, "only {quanta} quanta for a 20-quantum job");
    }

    #[test]
    fn spin_job_runs_to_completion_with_huge_quantum() {
        let mut c = ctx();
        let mut job = SpinJob::new(c.clock.to_cycles(Nanos::from_micros(50)));
        c.arm(c.clock.to_cycles(Nanos::from_millis(100)));
        assert_eq!(job.run(&mut c), JobStatus::Done);
    }
}
