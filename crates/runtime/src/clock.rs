//! The physical clock behind forced multitasking.
//!
//! TQ's probes read the hardware cycle counter (`RDTSC` on x86, §3.1).
//! [`TscClock`] wraps that read and a one-time calibration of cycles per
//! nanosecond; on non-x86 targets it falls back to `Instant`, preserving
//! semantics at a coarser cost.

use std::time::Instant;
use tq_core::{CpuFreq, Cycles, Nanos};

/// A calibrated cycle clock.
///
/// # Example
///
/// ```
/// use tq_runtime::TscClock;
///
/// let clock = TscClock::calibrated();
/// let a = clock.now();
/// let b = clock.now();
/// assert!(b >= a, "cycle counter must be monotonic");
/// ```
#[derive(Debug, Clone)]
pub struct TscClock {
    freq: CpuFreq,
    origin: Instant,
}

impl TscClock {
    /// Calibrates the cycle counter against the monotonic clock
    /// (~10 ms of sampling, done once at server start).
    pub fn calibrated() -> Self {
        let origin = Instant::now();
        #[cfg(target_arch = "x86_64")]
        {
            let t0 = Instant::now();
            let c0 = raw_cycles();
            // Busy-wait a calibration window.
            while t0.elapsed().as_millis() < 10 {
                std::hint::spin_loop();
            }
            let c1 = raw_cycles();
            let dt = t0.elapsed().as_nanos() as f64;
            let dc = c1.wrapping_sub(c0) as f64;
            let hz = dc / dt * 1e9;
            if hz.is_finite() && hz > 1e8 {
                return TscClock {
                    freq: CpuFreq::from_hz(hz),
                    origin,
                };
            }
        }
        TscClock {
            // Fallback: treat the nanosecond clock as a 1 GHz counter.
            freq: CpuFreq::from_ghz(1.0),
            origin,
        }
    }

    /// The calibrated frequency.
    pub fn freq(&self) -> CpuFreq {
        self.freq
    }

    /// Reads the cycle counter (the probe's `RDTSC`).
    #[inline]
    pub fn now(&self) -> Cycles {
        #[cfg(target_arch = "x86_64")]
        {
            Cycles(raw_cycles())
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Cycles(self.origin.elapsed().as_nanos() as u64)
        }
    }

    /// Converts a cycle delta to nanoseconds.
    #[inline]
    pub fn to_nanos(&self, delta: Cycles) -> Nanos {
        self.freq.cycles_to_nanos(delta)
    }

    /// Converts a duration to cycles (e.g. the quantum).
    #[inline]
    pub fn to_cycles(&self, d: Nanos) -> Cycles {
        self.freq.nanos_to_cycles(d)
    }

    /// Elapsed wall time since the clock was created (for request
    /// timestamps; one clock is shared server-wide).
    #[inline]
    pub fn wall_nanos(&self) -> Nanos {
        Nanos::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn raw_cycles() -> u64 {
    // SAFETY: RDTSC has no memory effects and is available on all x86-64.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn calibration_is_sane() {
        let clock = TscClock::calibrated();
        let ghz = clock.freq().hz() / 1e9;
        assert!(
            (0.5..=7.0).contains(&ghz),
            "calibrated {ghz} GHz looks wrong"
        );
    }

    #[test]
    fn cycle_deltas_track_wall_time() {
        let clock = TscClock::calibrated();
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(5));
        let b = clock.now();
        let measured = clock.to_nanos(b.wrapping_sub(a)).as_nanos();
        assert!(
            (3_000_000..60_000_000).contains(&measured),
            "5ms sleep measured as {measured}ns"
        );
    }

    #[test]
    fn quantum_conversion_round_trips() {
        let clock = TscClock::calibrated();
        let q = Nanos::from_micros(2);
        let cycles = clock.to_cycles(q);
        let back = clock.to_nanos(cycles);
        let err = back.as_nanos().abs_diff(q.as_nanos());
        assert!(err <= 2, "round trip error {err}ns");
    }
}
