//! The physical clock behind forced multitasking.
//!
//! TQ's probes read the hardware cycle counter (`RDTSC` on x86, §3.1).
//! [`TscClock`] wraps that read and a one-time calibration of cycles per
//! nanosecond; on non-x86 targets it falls back to `Instant`, preserving
//! semantics at a coarser cost.

use std::time::Instant;
use tq_core::{CpuFreq, Cycles, Nanos};

/// A calibrated cycle clock.
///
/// # Example
///
/// ```
/// use tq_runtime::TscClock;
///
/// let clock = TscClock::calibrated();
/// let a = clock.now();
/// let b = clock.now();
/// assert!(b >= a, "cycle counter must be monotonic");
/// ```
#[derive(Debug, Clone)]
pub struct TscClock {
    freq: CpuFreq,
    origin: Instant,
    /// Whether `now()` reads the raw TSC. False on non-x86 targets and
    /// whenever calibration failed: then `now()` reads the monotonic
    /// clock *as* a 1 GHz counter, so `freq`, quantum deadlines, and
    /// `to_nanos` stay mutually coherent. (Previously a failed
    /// calibration fell back to a 1 GHz `freq` while `now()` kept
    /// returning raw RDTSC — every deadline and conversion was then off
    /// by the real cycles-per-nanosecond ratio.)
    use_tsc: bool,
}

impl TscClock {
    /// Calibrates the cycle counter against the monotonic clock
    /// (~10 ms of sampling, done once at server start).
    pub fn calibrated() -> Self {
        let origin = Instant::now();
        #[cfg(target_arch = "x86_64")]
        {
            let t0 = Instant::now();
            let c0 = raw_cycles();
            // Busy-wait a calibration window.
            while t0.elapsed().as_millis() < 10 {
                std::hint::spin_loop();
            }
            let c1 = raw_cycles();
            let dt = t0.elapsed().as_nanos() as f64;
            let dc = c1.wrapping_sub(c0) as f64;
            let hz = dc / dt * 1e9;
            if let Some(clock) = Self::from_calibration(hz, origin) {
                return clock;
            }
        }
        Self::instant_fallback_at(origin)
    }

    /// Accepts a calibration result if it is sane; `None` sends the
    /// caller to the [`TscClock::instant_fallback`] path. Split out so
    /// the failure path is testable without a host whose TSC misbehaves.
    fn from_calibration(hz: f64, origin: Instant) -> Option<Self> {
        if hz.is_finite() && hz > 1e8 {
            Some(TscClock {
                freq: CpuFreq::from_hz(hz),
                origin,
                use_tsc: true,
            })
        } else {
            None
        }
    }

    /// A clock that never touches the TSC: the monotonic clock is read as
    /// a 1 GHz cycle counter (1 cycle == 1 ns), keeping every conversion
    /// exact by construction. Used when calibration fails and on non-x86
    /// targets; public so tests and non-TSC hosts can opt in directly.
    pub fn instant_fallback() -> Self {
        Self::instant_fallback_at(Instant::now())
    }

    fn instant_fallback_at(origin: Instant) -> Self {
        TscClock {
            freq: CpuFreq::from_ghz(1.0),
            origin,
            use_tsc: false,
        }
    }

    /// The calibrated frequency.
    pub fn freq(&self) -> CpuFreq {
        self.freq
    }

    /// Whether `now()` reads the hardware TSC (false: monotonic-clock
    /// fallback at 1 GHz).
    pub fn uses_tsc(&self) -> bool {
        self.use_tsc
    }

    /// Reads the cycle counter (the probe's `RDTSC`), or the fallback
    /// nanosecond counter when the TSC is unavailable/uncalibrated —
    /// always in the units `freq()` describes.
    #[inline]
    pub fn now(&self) -> Cycles {
        #[cfg(target_arch = "x86_64")]
        if self.use_tsc {
            return Cycles(raw_cycles());
        }
        Cycles(self.origin.elapsed().as_nanos() as u64)
    }

    /// Converts a cycle delta to nanoseconds.
    #[inline]
    pub fn to_nanos(&self, delta: Cycles) -> Nanos {
        self.freq.cycles_to_nanos(delta)
    }

    /// Converts a duration to cycles (e.g. the quantum).
    #[inline]
    pub fn to_cycles(&self, d: Nanos) -> Cycles {
        self.freq.nanos_to_cycles(d)
    }

    /// Elapsed wall time since the clock was created (for request
    /// timestamps; one clock is shared server-wide).
    #[inline]
    pub fn wall_nanos(&self) -> Nanos {
        Nanos::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn raw_cycles() -> u64 {
    // SAFETY: RDTSC has no memory effects and is available on all x86-64.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn calibration_is_sane() {
        let clock = TscClock::calibrated();
        let ghz = clock.freq().hz() / 1e9;
        assert!(
            (0.5..=7.0).contains(&ghz),
            "calibrated {ghz} GHz looks wrong"
        );
    }

    #[test]
    fn cycle_deltas_track_wall_time() {
        let clock = TscClock::calibrated();
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(5));
        let b = clock.now();
        let measured = clock.to_nanos(b.wrapping_sub(a)).as_nanos();
        assert!(
            (3_000_000..60_000_000).contains(&measured),
            "5ms sleep measured as {measured}ns"
        );
    }

    /// Regression test for the calibration-failure fallback: a bogus
    /// calibration (NaN / 0 / absurdly low hz) must yield a clock whose
    /// `now()` and `freq()` agree — i.e. the Instant-based counter at
    /// 1 GHz — not raw RDTSC paired with a made-up frequency.
    #[test]
    fn failed_calibration_falls_back_coherently() {
        for bad_hz in [f64::NAN, f64::INFINITY, 0.0, 1e7, -3.0e9] {
            assert!(
                TscClock::from_calibration(bad_hz, Instant::now()).is_none(),
                "calibration accepted bogus {bad_hz} hz"
            );
        }
        let clock = TscClock::instant_fallback();
        assert!(!clock.uses_tsc());
        assert!((clock.freq().hz() - 1e9).abs() < 1.0);
        // The decisive check: a measured wall-clock interval converted
        // through the clock's own freq must come out as wall time. With
        // the pre-fix behavior (raw RDTSC at 1 GHz nominal) this is off
        // by the host's real GHz (~3x on typical hardware).
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(5));
        let b = clock.now();
        let measured = clock.to_nanos(b.wrapping_sub(a)).as_nanos();
        assert!(
            (4_000_000..60_000_000).contains(&measured),
            "5ms sleep measured as {measured}ns through the fallback clock"
        );
    }

    #[test]
    fn fallback_quantum_conversion_is_exact() {
        let clock = TscClock::instant_fallback();
        let q = Nanos::from_micros(2);
        // 1 cycle == 1 ns by construction: conversions are identities.
        assert_eq!(clock.to_cycles(q).0, q.as_nanos());
        assert_eq!(clock.to_nanos(clock.to_cycles(q)), q);
    }

    #[test]
    fn quantum_conversion_round_trips() {
        let clock = TscClock::calibrated();
        let q = Nanos::from_micros(2);
        let cycles = clock.to_cycles(q);
        let back = clock.to_nanos(cycles);
        let err = back.as_nanos().abs_diff(q.as_nanos());
        assert!(err <= 2, "round trip error {err}ns");
    }
}
