//! The key-value store facade.
//!
//! Wraps the skip list with the two operations the paper's RocksDB
//! workload issues — GET and SCAN — plus deterministic population and
//! optional access tracing for the Figure 15 reuse-distance study.

use crate::skiplist::SkipList;
use crate::trace::AccessTrace;

/// Bytes of synthetic address space per skip-list arena slot: a node
/// header + key + tower comfortably fits in two cache lines, and values
/// are addressed in a separate region.
const NODE_STRIDE: u64 = 128;

/// An in-memory ordered KV store with RocksDB-shaped operations.
///
/// # Example
///
/// ```
/// use tq_kv::KvStore;
///
/// let mut store = KvStore::new(1);
/// store.populate(1_000, 32);
/// assert_eq!(store.len(), 1_000);
/// assert!(store.get(&KvStore::nth_key(999)).is_some());
/// ```
#[derive(Debug)]
pub struct KvStore {
    list: SkipList,
    value_size: usize,
}

impl KvStore {
    /// Creates an empty store; `seed` fixes skip-list tower heights.
    pub fn new(seed: u64) -> Self {
        KvStore {
            list: SkipList::new(seed),
            value_size: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// The canonical key of entry `i` (big-endian, so numeric order is
    /// byte order).
    pub fn nth_key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    /// Fills the store with `n` entries of `value_size`-byte values,
    /// keyed [`KvStore::nth_key`]`(0..n)`.
    pub fn populate(&mut self, n: u64, value_size: usize) {
        self.value_size = value_size;
        for i in 0..n {
            let v = vec![(i % 251) as u8; value_size];
            self.list.insert(Self::nth_key(i), v);
        }
    }

    /// Inserts one entry.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.list.insert(key, value);
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.list.get(key)
    }

    /// Range scan: up to `count` entries with keys ≥ `start`.
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<(&[u8], &[u8])> {
        self.list.iter_from(start).take(count).collect()
    }

    /// GET with a synthetic memory-access trace: descent node touches,
    /// value copy, and the reused comparator/staging working set.
    pub fn get_with_trace(&self, key: &[u8], trace: &mut AccessTrace) -> Option<&[u8]> {
        let value_base = self.value_region_base();
        let result = self.list.get_traced(key, &mut |node| {
            // Node header + key: two lines at the node's arena address;
            // then the comparator's working line — reused every visit,
            // the source of small intra-job reuse distances.
            let addr = node as u64 * NODE_STRIDE;
            trace.touch(addr);
            trace.touch(addr + 64);
            trace.touch(u64::MAX - 1024); // comparator scratch
        });
        if let Some(v) = result {
            let vid = v.as_ptr() as u64 % (1 << 20);
            trace.touch_range(value_base + vid * 64, v.len() as u64);
        }
        result
    }

    /// SCAN with a synthetic trace: one pointer-walk touch per entry,
    /// value copy, and the staging buffer every output engine reuses
    /// (4 KiB ring — those accesses dominate and have small reuse
    /// distances, matching the paper's Figure 15 observation that even
    /// SCAN has substantial intra-job locality).
    pub fn scan_with_trace(
        &self,
        start: &[u8],
        count: usize,
        trace: &mut AccessTrace,
    ) -> Vec<(&[u8], &[u8])> {
        let value_base = self.value_region_base();
        let staging_base = u64::MAX - (1 << 16);
        let mut staged: u64 = 0;
        let out = self.list.scan_traced(start, count, &mut |node| {
            trace.touch(node as u64 * NODE_STRIDE);
        });
        for (i, (_, v)) in out.iter().enumerate() {
            // Copy the value into the 4 KiB staging ring: read value
            // lines, write staging lines (which wrap and get reused).
            trace.touch_range(value_base + (i as u64) * 256, v.len() as u64);
            let len = (v.len() as u64).max(1);
            for _ in 0..len.div_ceil(64) {
                trace.touch(staging_base + (staged % 4096));
                staged += 64;
            }
            // Comparator/iterator state each step.
            trace.touch(u64::MAX - 1024);
        }
        out
    }

    fn value_region_base(&self) -> u64 {
        (self.list.arena_len() as u64 + 1) * NODE_STRIDE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64) -> KvStore {
        let mut s = KvStore::new(9);
        s.populate(n, 100);
        s
    }

    #[test]
    fn populate_and_get() {
        let s = filled(5_000);
        assert_eq!(s.len(), 5_000);
        let v = s.get(&KvStore::nth_key(4_321)).expect("present");
        assert_eq!(v.len(), 100);
        assert!(s.get(&KvStore::nth_key(5_000)).is_none());
    }

    #[test]
    fn scan_is_ordered_prefix() {
        let s = filled(1_000);
        let entries = s.scan(&KvStore::nth_key(500), 10);
        assert_eq!(entries.len(), 10);
        for (i, (k, _)) in entries.iter().enumerate() {
            assert_eq!(*k, KvStore::nth_key(500 + i as u64).as_slice());
        }
    }

    #[test]
    fn scan_truncates_at_end() {
        let s = filled(100);
        let entries = s.scan(&KvStore::nth_key(95), 10);
        assert_eq!(entries.len(), 5);
    }

    #[test]
    fn get_trace_is_short() {
        let s = filled(100_000);
        let mut t = AccessTrace::new();
        s.get_with_trace(&KvStore::nth_key(54_321), &mut t).unwrap();
        assert!(!t.is_empty());
        // A GET's footprint is O(log n) nodes + one value: well under a
        // thousand line touches.
        assert!(t.len() < 1_000, "GET touched {} lines", t.len());
    }

    #[test]
    fn scan_trace_reuses_staging_buffer() {
        let s = filled(10_000);
        let mut t = AccessTrace::new();
        let got = s.scan_with_trace(&KvStore::nth_key(0), 500, &mut t);
        assert_eq!(got.len(), 500);
        // The 4 KiB staging ring (64 lines) must be re-touched many times.
        let staging_lines: std::collections::HashSet<u64> = t
            .lines()
            .iter()
            .copied()
            .filter(|&l| l >= (u64::MAX - (1 << 16)) / 64 - 1)
            .collect();
        assert!(
            staging_lines.len() <= 66,
            "staging region should stay 4KiB: {} distinct lines",
            staging_lines.len()
        );
    }

    #[test]
    fn put_overrides() {
        let mut s = filled(10);
        s.put(KvStore::nth_key(3), vec![9; 4]);
        assert_eq!(s.get(&KvStore::nth_key(3)), Some(&[9u8, 9, 9, 9][..]));
    }
}
