//! Memtable lifecycle: an LSM-style store of one active skip list plus
//! frozen immutable ones.
//!
//! RocksDB's write path fills a skip-list memtable, freezes it when full,
//! and serves reads by consulting the active table first and progressively
//! older frozen ones — scans merge across all of them. This module
//! reproduces that structure (in memory; flushing to SSTs is beyond what
//! any of the paper's experiments touch), so the `tq-kv` GET/SCAN jobs
//! exercise the same multi-table code paths real storage engines do.

use crate::skiplist::SkipList;

/// An LSM-style in-memory store: one mutable memtable, many frozen ones.
///
/// # Example
///
/// ```
/// use tq_kv::lsm::LsmStore;
///
/// let mut store = LsmStore::new(4, 42); // freeze every 4 entries
/// for i in 0..10u8 {
///     store.put(vec![i], vec![i * 2]);
/// }
/// assert!(store.frozen_tables() >= 2);
/// assert_eq!(store.get(&[7]), Some(&[14][..]));
/// let all: Vec<u8> = store.scan(&[], 100).into_iter().map(|(k, _)| k[0]).collect();
/// assert_eq!(all, (0..10).collect::<Vec<u8>>());
/// ```
#[derive(Debug)]
pub struct LsmStore {
    active: SkipList,
    /// Frozen memtables, newest last.
    frozen: Vec<SkipList>,
    memtable_cap: usize,
    next_seed: u64,
    len_upper_bound: usize,
}

impl LsmStore {
    /// Creates a store that freezes the active memtable after
    /// `memtable_cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `memtable_cap` is zero.
    pub fn new(memtable_cap: usize, seed: u64) -> Self {
        assert!(memtable_cap > 0, "memtable capacity must be positive");
        LsmStore {
            active: SkipList::new(seed),
            frozen: Vec::new(),
            memtable_cap,
            next_seed: seed.wrapping_add(1),
            len_upper_bound: 0,
        }
    }

    /// Number of frozen memtables.
    pub fn frozen_tables(&self) -> usize {
        self.frozen.len()
    }

    /// Upper bound on distinct keys (duplicates across tables counted
    /// once per table; exact counting would require a full merge).
    pub fn len_upper_bound(&self) -> usize {
        self.len_upper_bound
    }

    /// Inserts a key/value pair, freezing the memtable if it filled up.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        if self.active.insert(key, value).is_none() {
            self.len_upper_bound += 1;
        }
        if self.active.len() >= self.memtable_cap {
            self.freeze();
        }
    }

    /// Freezes the active memtable (no-op when empty).
    pub fn freeze(&mut self) {
        if self.active.is_empty() {
            return;
        }
        let seed = self.next_seed;
        self.next_seed = self.next_seed.wrapping_add(1);
        let full = std::mem::replace(&mut self.active, SkipList::new(seed));
        self.frozen.push(full);
    }

    /// Point lookup: newest table containing the key wins.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        if let Some(v) = self.active.get(key) {
            return Some(v);
        }
        self.frozen.iter().rev().find_map(|t| t.get(key))
    }

    /// Merged range scan: up to `count` entries with keys ≥ `start`, in
    /// key order, newest value winning for duplicated keys.
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        // K-way merge over per-table ordered iterators. Tables are few
        // (memtables, not SSTs), so a simple peek-min scan is both clear
        // and fast enough.
        let mut iters: Vec<_> = self
            .frozen
            .iter()
            .chain(std::iter::once(&self.active))
            .map(|t| t.iter_from(start).peekable())
            .collect();
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(count);
        while out.len() < count {
            // Find the minimal key; among equal keys the newest table
            // (highest index: active last) wins.
            let mut best: Option<(usize, &[u8])> = None;
            for (i, it) in iters.iter_mut().enumerate() {
                if let Some(&(k, _)) = it.peek() {
                    best = match best {
                        None => Some((i, k)),
                        Some((_, bk)) if k < bk => Some((i, k)),
                        Some((bi, bk)) if k == bk && i > bi => Some((i, k)),
                        other => other,
                    };
                }
            }
            let Some((winner, key)) = best else { break };
            let key = key.to_vec();
            // Advance every iterator holding this key (dedup).
            let mut value = Vec::new();
            for (i, it) in iters.iter_mut().enumerate() {
                if it.peek().map(|&(k, _)| k == key.as_slice()) == Some(true) {
                    let (_, v) = it.next().expect("peeked");
                    if i == winner {
                        value = v.to_vec();
                    }
                }
            }
            out.push((key, value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn freeze_happens_at_capacity() {
        let mut s = LsmStore::new(3, 1);
        for i in 0..9u8 {
            s.put(vec![i], vec![i]);
        }
        assert_eq!(s.frozen_tables(), 3);
        for i in 0..9u8 {
            assert_eq!(s.get(&[i]), Some(&[i][..]));
        }
    }

    #[test]
    fn newest_value_wins_across_tables() {
        let mut s = LsmStore::new(2, 1);
        s.put(b"k".to_vec(), b"v1".to_vec());
        s.put(b"x".to_vec(), b"_".to_vec()); // forces a freeze
        s.put(b"k".to_vec(), b"v2".to_vec()); // newer table
        assert_eq!(s.get(b"k"), Some(&b"v2"[..]));
        let scan = s.scan(b"k", 1);
        assert_eq!(scan[0].1, b"v2".to_vec());
    }

    #[test]
    fn scan_merges_in_order_without_duplicates() {
        let mut s = LsmStore::new(2, 5);
        // Interleave so adjacent keys land in different tables.
        for &i in &[0u8, 4, 1, 5, 2, 6, 3, 7] {
            s.put(vec![i], vec![i]);
        }
        let got: Vec<u8> = s.scan(&[], 100).into_iter().map(|(k, _)| k[0]).collect();
        assert_eq!(got, (0..8).collect::<Vec<u8>>());
    }

    #[test]
    fn manual_freeze_and_empty_freeze() {
        let mut s = LsmStore::new(100, 1);
        s.freeze(); // empty: no-op
        assert_eq!(s.frozen_tables(), 0);
        s.put(b"a".to_vec(), b"1".to_vec());
        s.freeze();
        assert_eq!(s.frozen_tables(), 1);
        assert_eq!(s.get(b"a"), Some(&b"1"[..]));
    }

    proptest! {
        /// The multi-table store behaves exactly like a BTreeMap under
        /// arbitrary interleavings of writes (including overwrites) and
        /// freezes.
        #[test]
        fn behaves_like_btreemap(
            ops in prop::collection::vec(
                (prop::collection::vec(any::<u8>(), 0..4), any::<u8>(), prop::bool::ANY),
                0..150,
            ),
            cap in 1usize..20,
        ) {
            let mut s = LsmStore::new(cap, 9);
            let mut model = BTreeMap::new();
            for (k, v, do_freeze) in ops {
                s.put(k.clone(), vec![v]);
                model.insert(k, vec![v]);
                if do_freeze {
                    s.freeze();
                }
            }
            for (k, v) in &model {
                prop_assert_eq!(s.get(k), Some(v.as_slice()));
            }
            let got = s.scan(&[], 1_000);
            let expect: Vec<(Vec<u8>, Vec<u8>)> =
                model.into_iter().collect();
            prop_assert_eq!(got, expect);
        }
    }
}
