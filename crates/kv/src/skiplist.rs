//! An arena-based probabilistic skip list.
//!
//! The classic Pugh structure RocksDB uses for its memtable: towers of
//! forward pointers with geometrically distributed heights give expected
//! O(log n) point lookups and O(1)-per-entry ordered iteration — exactly
//! the access pattern split (short descent vs. long pointer walk) that
//! makes GETs microsecond-scale and SCANs hundreds of microseconds.
//!
//! Nodes live in an arena (`Vec`) and link by index, which keeps the
//! implementation safe Rust and — useful for the cache study — gives
//! every node a stable synthetic "address" for access tracing.

use std::fmt;

/// Maximum tower height (enough for billions of entries at p = 1/4).
pub const MAX_HEIGHT: usize = 16;

/// Sentinel index meaning "no next node".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: Vec<u8>,
    value: Vec<u8>,
    /// Forward pointers, one per level; length = tower height.
    next: Vec<u32>,
}

/// An ordered map from byte keys to byte values.
///
/// # Example
///
/// ```
/// use tq_kv::SkipList;
///
/// let mut sl = SkipList::new(7);
/// sl.insert(b"b".to_vec(), b"2".to_vec());
/// sl.insert(b"a".to_vec(), b"1".to_vec());
/// assert_eq!(sl.get(b"a"), Some(&b"1"[..]));
/// let keys: Vec<&[u8]> = sl.iter_from(b"a").map(|(k, _)| k).collect();
/// assert_eq!(keys, vec![&b"a"[..], &b"b"[..]]);
/// ```
#[derive(Clone)]
pub struct SkipList {
    /// Arena; index 0 is the head sentinel (empty key, full height).
    nodes: Vec<Node>,
    /// Current maximum occupied height.
    height: usize,
    len: usize,
    rng: u64,
}

impl SkipList {
    /// Creates an empty list whose tower heights derive from `seed`.
    pub fn new(seed: u64) -> Self {
        SkipList {
            nodes: vec![Node {
                key: Vec::new(),
                value: Vec::new(),
                next: vec![NIL; MAX_HEIGHT],
            }],
            height: 1,
            len: 0,
            rng: seed | 1,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or replaces; returns the previous value if the key existed.
    pub fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Option<Vec<u8>> {
        let mut update = [0u32; MAX_HEIGHT];
        let found = self.find_update_path(&key, &mut update);
        if let Some(idx) = found {
            let old = std::mem::replace(&mut self.nodes[idx as usize].value, value);
            return Some(old);
        }
        let h = self.random_height();
        if h > self.height {
            // Splice from the head at newly-occupied levels.
            update[self.height..h].fill(0);
            self.height = h;
        }
        let idx = self.nodes.len() as u32;
        let mut next = Vec::with_capacity(h);
        for (level, &pred) in update.iter().enumerate().take(h) {
            next.push(self.nodes[pred as usize].next[level]);
        }
        self.nodes.push(Node { key, value, next });
        for (level, &pred) in update.iter().enumerate().take(h) {
            self.nodes[pred as usize].next[level] = idx;
        }
        self.len += 1;
        None
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let idx = self.seek(key, &mut |_| {});
        match idx {
            Some(i) if self.nodes[i as usize].key == key => {
                Some(self.nodes[i as usize].value.as_slice())
            }
            _ => None,
        }
    }

    /// Point lookup that reports every arena index visited during the
    /// descent (head excluded) — the raw material for access traces.
    pub fn get_traced(&self, key: &[u8], visit: &mut impl FnMut(u32)) -> Option<&[u8]> {
        let idx = self.seek(key, visit);
        match idx {
            Some(i) if self.nodes[i as usize].key == key => {
                Some(self.nodes[i as usize].value.as_slice())
            }
            _ => None,
        }
    }

    /// Iterates entries with keys ≥ `start`, in order.
    pub fn iter_from(&self, start: &[u8]) -> IterFrom<'_> {
        let first = match self.seek(start, &mut |_| {}) {
            Some(i) => i,
            None => NIL,
        };
        IterFrom { list: self, cur: first }
    }

    /// Like [`SkipList::iter_from`], reporting each visited arena index.
    pub fn scan_traced(
        &self,
        start: &[u8],
        count: usize,
        visit: &mut impl FnMut(u32),
    ) -> Vec<(&[u8], &[u8])> {
        let mut out = Vec::with_capacity(count);
        let mut cur = match self.seek(start, visit) {
            Some(i) => i,
            None => NIL,
        };
        while cur != NIL && out.len() < count {
            visit(cur);
            let node = &self.nodes[cur as usize];
            out.push((node.key.as_slice(), node.value.as_slice()));
            cur = node.next[0];
        }
        out
    }

    /// Finds the first node with key ≥ `key`, reporting visited nodes.
    fn seek(&self, key: &[u8], visit: &mut impl FnMut(u32)) -> Option<u32> {
        let mut pred = 0u32; // head
        for level in (0..self.height).rev() {
            loop {
                let next = self.nodes[pred as usize].next[level];
                if next == NIL {
                    break;
                }
                visit(next);
                if self.nodes[next as usize].key.as_slice() < key {
                    pred = next;
                } else {
                    break;
                }
            }
        }
        let first = self.nodes[pred as usize].next[0];
        (first != NIL).then_some(first)
    }

    /// Finds predecessors at every level; returns the node index if the
    /// exact key already exists.
    fn find_update_path(&self, key: &[u8], update: &mut [u32; MAX_HEIGHT]) -> Option<u32> {
        let mut pred = 0u32;
        for level in (0..self.height).rev() {
            loop {
                let next = self.nodes[pred as usize].next[level];
                if next == NIL || self.nodes[next as usize].key.as_slice() >= key {
                    break;
                }
                pred = next;
            }
            update[level] = pred;
        }
        let first = self.nodes[pred as usize].next[0];
        (first != NIL && self.nodes[first as usize].key == key).then_some(first)
    }

    /// Geometric tower height with p = 1/4, capped at [`MAX_HEIGHT`].
    fn random_height(&mut self) -> usize {
        // SplitMix64 step.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut h = 1;
        // Two random bits per level: promote with probability 1/4.
        while h < MAX_HEIGHT && (z & 0b11) == 0 {
            z >>= 2;
            h += 1;
        }
        h
    }

    /// The number of arena slots (for synthetic address assignment).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }
}

impl fmt::Debug for SkipList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipList")
            .field("len", &self.len)
            .field("height", &self.height)
            .finish()
    }
}

/// Ordered iterator returned by [`SkipList::iter_from`].
#[derive(Debug)]
pub struct IterFrom<'a> {
    list: &'a SkipList,
    cur: u32,
}

impl<'a> Iterator for IterFrom<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur as usize];
        self.cur = node.next[0];
        Some((node.key.as_slice(), node.value.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut sl = SkipList::new(1);
        for i in 0..1000u32 {
            sl.insert(i.to_be_bytes().to_vec(), (i * 2).to_be_bytes().to_vec());
        }
        assert_eq!(sl.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(
                sl.get(&i.to_be_bytes()),
                Some((i * 2).to_be_bytes().as_slice())
            );
        }
        assert_eq!(sl.get(&1001u32.to_be_bytes()), None);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut sl = SkipList::new(1);
        assert_eq!(sl.insert(b"k".to_vec(), b"v1".to_vec()), None);
        assert_eq!(sl.insert(b"k".to_vec(), b"v2".to_vec()), Some(b"v1".to_vec()));
        assert_eq!(sl.len(), 1);
        assert_eq!(sl.get(b"k"), Some(&b"v2"[..]));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut sl = SkipList::new(3);
        // Insert in reverse to exercise ordering.
        for i in (0..500u32).rev() {
            sl.insert(i.to_be_bytes().to_vec(), vec![]);
        }
        let keys: Vec<Vec<u8>> = sl.iter_from(&[]).map(|(k, _)| k.to_vec()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 500);
    }

    #[test]
    fn iter_from_seeks_to_lower_bound() {
        let mut sl = SkipList::new(3);
        for i in [10u32, 20, 30] {
            sl.insert(i.to_be_bytes().to_vec(), vec![]);
        }
        let first = sl.iter_from(&15u32.to_be_bytes()).next().unwrap();
        assert_eq!(first.0, 20u32.to_be_bytes().as_slice());
    }

    #[test]
    fn get_traced_visits_log_n_nodes() {
        let mut sl = SkipList::new(5);
        for i in 0..100_000u32 {
            sl.insert(i.to_be_bytes().to_vec(), vec![0u8; 8]);
        }
        let mut visits = 0usize;
        sl.get_traced(&54_321u32.to_be_bytes(), &mut |_| visits += 1);
        assert!(
            visits < 200,
            "descent visited {visits} nodes in a 100k list (expected O(log n))"
        );
    }

    #[test]
    fn scan_traced_returns_count_entries() {
        let mut sl = SkipList::new(5);
        for i in 0..1_000u32 {
            sl.insert(i.to_be_bytes().to_vec(), vec![1]);
        }
        let mut visits = Vec::new();
        let got = sl.scan_traced(&100u32.to_be_bytes(), 50, &mut |i| visits.push(i));
        assert_eq!(got.len(), 50);
        assert_eq!(got[0].0, 100u32.to_be_bytes().as_slice());
        assert!(visits.len() >= 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut sl = SkipList::new(99);
            for i in 0..200u32 {
                sl.insert(i.to_be_bytes().to_vec(), vec![i as u8]);
            }
            sl.arena_len()
        };
        assert_eq!(build(), build());
    }

    proptest! {
        #[test]
        fn behaves_like_btreemap(ops in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..8), prop::collection::vec(any::<u8>(), 0..8)),
            0..200,
        )) {
            let mut sl = SkipList::new(42);
            let mut model = BTreeMap::new();
            for (k, v) in &ops {
                let expect = model.insert(k.clone(), v.clone());
                let got = sl.insert(k.clone(), v.clone());
                prop_assert_eq!(got, expect);
            }
            prop_assert_eq!(sl.len(), model.len());
            for (k, v) in &model {
                prop_assert_eq!(sl.get(k), Some(v.as_slice()));
            }
            // Full iteration matches the model's order.
            let got: Vec<_> = sl.iter_from(&[]).map(|(k, _)| k.to_vec()).collect();
            let expect: Vec<_> = model.keys().cloned().collect();
            prop_assert_eq!(got, expect);
        }
    }
}
