//! Synthetic memory-access traces.
//!
//! The paper measures reuse-distance histograms of RocksDB GET and SCAN
//! with a Pin tool (Figure 15). We reproduce the measurement by having
//! the store emit the cache-line addresses an operation touches:
//!
//! * skip-list node headers/keys (one line per visited node),
//! * value bytes (one line per 64 bytes copied),
//! * the operation's working buffer — comparator state and the output
//!   staging area that real storage engines reuse across every entry,
//!   which is where the small intra-job reuse distances come from.

use serde::{Deserialize, Serialize};

/// Size of a cache line in bytes; addresses in a trace are line-granular.
pub const CACHE_LINE: u64 = 64;

/// A sequence of cache-line addresses touched by one operation.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessTrace {
    addrs: Vec<u64>,
}

impl AccessTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        AccessTrace::default()
    }

    /// Records a touch of the cache line containing `byte_addr`.
    #[inline]
    pub fn touch(&mut self, byte_addr: u64) {
        self.addrs.push(byte_addr / CACHE_LINE);
    }

    /// Records `bytes` sequential bytes starting at `byte_addr` (one
    /// access per cache line).
    pub fn touch_range(&mut self, byte_addr: u64, bytes: u64) {
        let first = byte_addr / CACHE_LINE;
        let last = (byte_addr + bytes.max(1) - 1) / CACHE_LINE;
        for line in first..=last {
            self.addrs.push(line);
        }
    }

    /// The recorded line addresses, in access order.
    pub fn lines(&self) -> &[u64] {
        &self.addrs
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Appends another trace (e.g. concatenating operations of one job).
    pub fn extend_from(&mut self, other: &AccessTrace) {
        self.addrs.extend_from_slice(&other.addrs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_is_line_granular() {
        let mut t = AccessTrace::new();
        t.touch(0);
        t.touch(63);
        t.touch(64);
        assert_eq!(t.lines(), &[0, 0, 1]);
    }

    #[test]
    fn touch_range_covers_spanning_lines() {
        let mut t = AccessTrace::new();
        t.touch_range(60, 10); // spans lines 0 and 1
        assert_eq!(t.lines(), &[0, 1]);
        let mut t2 = AccessTrace::new();
        t2.touch_range(128, 64);
        assert_eq!(t2.lines(), &[2]);
    }

    #[test]
    fn touch_range_zero_bytes_touches_one_line() {
        let mut t = AccessTrace::new();
        t.touch_range(100, 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = AccessTrace::new();
        a.touch(0);
        let mut b = AccessTrace::new();
        b.touch(128);
        a.extend_from(&b);
        assert_eq!(a.lines(), &[0, 2]);
    }
}
