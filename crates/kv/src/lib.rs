//! # Tiny Quanta key-value store
//!
//! An in-memory ordered key-value store standing in for the RocksDB
//! memtable the paper serves (§5.1): a hand-built probabilistic
//! [`skiplist`] under a [`KvStore`] facade offering the two operations
//! the RocksDB workload issues — point `GET`s (≈1 µs) and long range
//! `SCAN`s (hundreds of µs).
//!
//! The store can record a synthetic [`trace`] of the memory locations an
//! operation touches, which the cache-model crate turns into the
//! reuse-distance histograms of Figure 15. The [`lsm`] module adds the
//! memtable lifecycle (freeze + merged multi-table scans) real storage
//! engines wrap around the skip list.
//!
//! ## Example
//!
//! ```
//! use tq_kv::KvStore;
//!
//! let mut store = KvStore::new(42);
//! store.populate(10_000, 64);
//! let key = KvStore::nth_key(123);
//! assert!(store.get(&key).is_some());
//! let entries = store.scan(&key, 100);
//! assert_eq!(entries.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lsm;
pub mod skiplist;
pub mod store;
pub mod trace;

pub use skiplist::SkipList;
pub use store::KvStore;
pub use trace::AccessTrace;
