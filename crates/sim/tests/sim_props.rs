//! Property-based tests of the simulation engine's invariants.

use proptest::prelude::*;
use tq_core::job::Completion;
use tq_core::{ClassId, JobId, Nanos};
use tq_sim::{ClassRecorder, EventQueue, SimRng, TailStats};

proptest! {
    /// The single-pass `summarize_all` reproduces the seed's multi-pass
    /// pipeline (kept in `tq_sim::metrics::reference`) on arbitrary
    /// completion sets: percentiles bit-for-bit, means within the ULP
    /// slack a different summation order permits.
    #[test]
    fn summarize_all_matches_multipass_reference(
        jobs in prop::collection::vec(
            // (arrival, service − 1, extra wait, class)
            (0u64..1_000_000, 0u64..100_000, 0u64..1_000_000, 0u16..3),
            0..300,
        ),
        warmup_choice in 0usize..3,
        extra_us in 0u64..10,
    ) {
        let warmup = [0.0, 0.1, 0.5][warmup_choice];
        let extra = Nanos::from_micros(extra_us);
        let mut rec = ClassRecorder::new(warmup);
        for (i, &(arrival, service, wait, class)) in jobs.iter().enumerate() {
            let arrival = Nanos::from_nanos(arrival);
            let service = Nanos::from_nanos(service + 1);
            rec.record(Completion {
                id: JobId(i as u64),
                class: ClassId(class),
                arrival,
                service,
                finish: arrival + service + Nanos::from_nanos(wait),
            });
        }
        let fast = rec.summarize_all(extra);
        let slow = tq_sim::metrics::reference::summarize_all(rec.completions(), warmup, extra);

        prop_assert_eq!(fast.overall_slowdown_p999, slow.overall_slowdown_p999);
        for (f, s) in [(&fast.classes_e2e, &slow.classes_e2e),
                       (&fast.classes_sojourn, &slow.classes_sojourn)] {
            prop_assert_eq!(f.len(), s.len());
            for (a, b) in f.iter().zip(s.iter()) {
                prop_assert_eq!(a.class, b.class);
                prop_assert_eq!(a.count, b.count);
                prop_assert_eq!(a.p50, b.p50);
                prop_assert_eq!(a.p99, b.p99);
                prop_assert_eq!(a.p999, b.p999);
                prop_assert_eq!(a.slowdown_p999, b.slowdown_p999);
                prop_assert!(a.mean.as_nanos().abs_diff(b.mean.as_nanos()) <= 1);
                let tol = 1e-9 * a.slowdown_mean.abs().max(b.slowdown_mean.abs()).max(1.0);
                prop_assert!((a.slowdown_mean - b.slowdown_mean).abs() <= tol);
            }
        }
    }

    /// However queries interleave, the completion vector is sorted at
    /// most once per batch of recordings.
    #[test]
    fn at_most_one_sort_per_recording_batch(
        batches in prop::collection::vec(prop::collection::vec(0u64..10_000, 1..20), 1..8),
    ) {
        let mut rec = ClassRecorder::new(0.1);
        let mut id = 0u64;
        for (bi, batch) in batches.iter().enumerate() {
            for &arrival in batch {
                rec.record(Completion {
                    id: JobId(id),
                    class: ClassId(0),
                    arrival: Nanos::from_nanos(arrival),
                    service: Nanos::from_nanos(100),
                    finish: Nanos::from_nanos(arrival + 500),
                });
                id += 1;
            }
            let _ = rec.summarize_all(Nanos::ZERO);
            let _ = rec.overall_slowdown(99.9);
            prop_assert_eq!(rec.arrival_sorts(), bi as u64 + 1);
        }
    }
    /// Popping returns events sorted by time, FIFO among equal times.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Nanos::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Stable sort of (time, insertion index) is exactly the expected
        // order.
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort();
        prop_assert_eq!(popped, expected);
    }

    /// Interleaved pushes (never into the past) and pops still come out
    /// in a globally consistent order.
    #[test]
    fn event_queue_interleaved_operation(
        deltas in prop::collection::vec(0u64..50, 1..100),
    ) {
        let mut q = EventQueue::new();
        q.push(Nanos::ZERO, 0usize);
        let mut last = Nanos::ZERO;
        let mut next_id = 1usize;
        for &d in &deltas {
            if let Some((t, _)) = q.pop() {
                prop_assert!(t >= last, "time went backwards");
                last = t;
                // Schedule a follow-up event relative to now.
                q.push(t + Nanos::from_nanos(d), next_id);
                next_id += 1;
            }
        }
    }

    /// The packed 4-ary event queue delivers the exact same
    /// `(time, event)` stream, lengths, and peeks as the seed's
    /// `BinaryHeap` queue (kept in `tq_sim::events::reference`) under an
    /// arbitrary interleaving of pushes and pops.
    #[test]
    fn event_queue_matches_reference(
        ops in prop::collection::vec((any::<bool>(), 0u64..200), 1..400),
    ) {
        let mut fast = EventQueue::new();
        let mut slow = tq_sim::events::reference::EventQueue::new();
        let mut now = 0u64;
        for (i, &(pop, delta)) in ops.iter().enumerate() {
            if pop && !fast.is_empty() {
                let a = fast.pop();
                prop_assert_eq!(a, slow.pop());
                now = fast.now().as_nanos();
            } else {
                let t = Nanos::from_nanos(now + delta);
                fast.push(t, i);
                slow.push(t, i);
            }
            prop_assert_eq!(fast.len(), slow.len());
            prop_assert_eq!(fast.peek_time(), slow.peek_time());
        }
        loop {
            let a = fast.pop();
            prop_assert_eq!(a, slow.pop());
            if a.is_none() { break; }
        }
        prop_assert_eq!(fast.popped(), slow.popped());
    }

    /// The percentile estimator matches the naive sorted definition.
    #[test]
    fn percentile_matches_naive(
        samples in prop::collection::vec(0u64..100_000, 1..500),
        p in 1u32..=1000,
    ) {
        let p = p as f64 / 10.0; // 0.1% .. 100%
        let mut stats: TailStats = samples.iter().copied().collect();
        let got = stats.percentile(p);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64 - 1e-9).ceil().max(1.0) as usize;
        prop_assert_eq!(got, sorted[rank.min(sorted.len()) - 1]);
    }

    /// Percentiles are monotone in p.
    #[test]
    fn percentiles_monotone(samples in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut stats: TailStats = samples.iter().copied().collect();
        let mut prev = 0;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let v = stats.percentile(p);
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// Exponential samples are non-negative and the generator never
    /// produces the same stream for different seeds (sanity, not crypto).
    #[test]
    fn exp_samples_nonnegative(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let _ = rng.exp_nanos(1_000.0); // must not panic
        }
    }

    /// weighted_index never exceeds the table length.
    #[test]
    fn weighted_index_in_bounds(
        weights in prop::collection::vec(0.01f64..10.0, 1..6),
        seed in any::<u64>(),
    ) {
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cum.push(acc);
        }
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.weighted_index(&cum) < cum.len());
        }
    }
}
