//! Property-based tests of the simulation engine's invariants.

use proptest::prelude::*;
use tq_core::Nanos;
use tq_sim::{EventQueue, SimRng, TailStats};

proptest! {
    /// Popping returns events sorted by time, FIFO among equal times.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Nanos::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Stable sort of (time, insertion index) is exactly the expected
        // order.
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort();
        prop_assert_eq!(popped, expected);
    }

    /// Interleaved pushes (never into the past) and pops still come out
    /// in a globally consistent order.
    #[test]
    fn event_queue_interleaved_operation(
        deltas in prop::collection::vec(0u64..50, 1..100),
    ) {
        let mut q = EventQueue::new();
        q.push(Nanos::ZERO, 0usize);
        let mut last = Nanos::ZERO;
        let mut next_id = 1usize;
        for &d in &deltas {
            if let Some((t, _)) = q.pop() {
                prop_assert!(t >= last, "time went backwards");
                last = t;
                // Schedule a follow-up event relative to now.
                q.push(t + Nanos::from_nanos(d), next_id);
                next_id += 1;
            }
        }
    }

    /// The percentile estimator matches the naive sorted definition.
    #[test]
    fn percentile_matches_naive(
        samples in prop::collection::vec(0u64..100_000, 1..500),
        p in 1u32..=1000,
    ) {
        let p = p as f64 / 10.0; // 0.1% .. 100%
        let mut stats: TailStats = samples.iter().copied().collect();
        let got = stats.percentile(p);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64 - 1e-9).ceil().max(1.0) as usize;
        prop_assert_eq!(got, sorted[rank.min(sorted.len()) - 1]);
    }

    /// Percentiles are monotone in p.
    #[test]
    fn percentiles_monotone(samples in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut stats: TailStats = samples.iter().copied().collect();
        let mut prev = 0;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let v = stats.percentile(p);
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// Exponential samples are non-negative and the generator never
    /// produces the same stream for different seeds (sanity, not crypto).
    #[test]
    fn exp_samples_nonnegative(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let _ = rng.exp_nanos(1_000.0); // must not panic
        }
    }

    /// weighted_index never exceeds the table length.
    #[test]
    fn weighted_index_in_bounds(
        weights in prop::collection::vec(0.01f64..10.0, 1..6),
        seed in any::<u64>(),
    ) {
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cum.push(acc);
        }
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.weighted_index(&cum) < cum.len());
        }
    }
}
