//! # Tiny Quanta simulation engine
//!
//! A small, deterministic discrete-event simulation toolkit used by every
//! macro-experiment in this reproduction:
//!
//! * [`events`] — a virtual-time event queue with deterministic FIFO
//!   tie-breaking ([`EventQueue`]).
//! * [`rng`] — a seeded, reproducible random source with the samplers the
//!   paper's workloads need (exponential inter-arrivals, weighted mixtures).
//! * [`pdes`] — conservative-lookahead parallel execution: a simulation
//!   split into message-passing shards advances in bounded virtual-time
//!   windows on a thread pool, bit-reproducibly for any thread count.
//! * [`metrics`] — tail-latency statistics: percentile estimation
//!   (p50…p99.9), per-class recording, slowdown, and warm-up discarding
//!   exactly as §5.1 describes (first 10% of samples dropped).
//!
//! The engine is intentionally *not* an actor framework: serving-system
//! models in `tq-queueing` own their state machines and drive the queue
//! directly, which keeps the hot loop allocation-free and fast enough to
//! simulate tens of millions of quanta per second.
//!
//! ## Example
//!
//! ```
//! use tq_core::Nanos;
//! use tq_sim::events::EventQueue;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Arrival(u64), Timer }
//!
//! let mut q = EventQueue::new();
//! q.push(Nanos::from_nanos(20), Ev::Timer);
//! q.push(Nanos::from_nanos(10), Ev::Arrival(1));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (Nanos::from_nanos(10), Ev::Arrival(1)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod events;
pub mod metrics;
pub mod pdes;
pub mod rng;

pub use events::{EventQueue, TagQueue};
pub use metrics::{ClassRecorder, ClassSummary, LogHistogram, RunSummary, TailStats};
pub use rng::SimRng;
