//! The virtual-time event queue.
//!
//! A binary min-heap keyed by `(time, sequence)`. The monotonically
//! increasing sequence number makes simultaneous events pop in insertion
//! order, which is what makes whole simulations bit-for-bit reproducible
//! across runs and platforms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tq_core::Nanos;

struct Entry<E> {
    time: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic future-event list for discrete-event simulation.
///
/// Events scheduled for the same instant are delivered in the order they
/// were pushed (FIFO tie-breaking).
///
/// # Example
///
/// ```
/// use tq_core::Nanos;
/// use tq_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(Nanos::from_nanos(5), "b");
/// q.push(Nanos::from_nanos(5), "c");
/// q.push(Nanos::from_nanos(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: Nanos,
    popped: u64,
}

impl<E: std::fmt::Debug> std::fmt::Debug for Entry<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("time", &self.time)
            .field("seq", &self.seq)
            .field("event", &self.event)
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::with_capacity(0)
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            last_popped: Nanos::ZERO,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute virtual time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped time: scheduling
    /// into the past is always a model bug and silently reordering it would
    /// corrupt causality.
    pub fn push(&mut self, time: Nanos, event: E) {
        assert!(
            time >= self.last_popped,
            "event scheduled into the past: {time} < now {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event with its timestamp, advancing
    /// the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.time >= self.last_popped, "heap violated time order");
            self.last_popped = e.time;
            self.popped += 1;
            (e.time, e.event)
        })
    }

    /// Total events delivered over the queue's lifetime — the
    /// simulation's work counter (events/sec in the perf harness).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.time)
    }

    /// The virtual time of the most recently popped event.
    pub fn now(&self) -> Nanos {
        self.last_popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending (the simulation has quiesced).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(30), 3);
        q.push(Nanos::from_nanos(10), 1);
        q.push(Nanos::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Nanos::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(5), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(10), ());
        q.pop();
        q.push(Nanos::from_nanos(9), ());
    }

    #[test]
    fn same_instant_as_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(10), 1);
        q.pop();
        q.push(Nanos::from_nanos(10), 2); // zero-delay follow-up event
        assert_eq!(q.pop(), Some((Nanos::from_nanos(10), 2)));
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Nanos::from_nanos(3), ());
        q.push(Nanos::from_nanos(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(1)));
    }
}
