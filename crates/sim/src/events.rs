//! The virtual-time event queue.
//!
//! A specialized future-event list keyed by `(time, sequence)`. The
//! monotonically increasing sequence number makes simultaneous events pop
//! in insertion order, which is what makes whole simulations bit-for-bit
//! reproducible across runs and platforms.
//!
//! Internally this is *not* `std::collections::BinaryHeap` (the seed's
//! implementation, preserved in [`reference`]). Two changes make it
//! several times cheaper per event at simulation queue depths (tens of
//! pending events):
//!
//! * **Packed keys.** `(time, seq)` is packed into a single `u128`
//!   (`time << 64 | seq`), so every heap comparison is one integer
//!   compare instead of a two-field lexicographic compare, and keys sit
//!   next to their payloads in a flat `Vec`.
//! * **4-ary layout + front slot.** The heap is 4-ary (shallower, and
//!   sift-downs touch cache-adjacent children), and the current global
//!   minimum is held in a dedicated *front slot* outside the heap.
//!   Pushing an event that is earlier than everything pending — the
//!   common Arrival → DispatchDone → SliceDone chain, where each event
//!   schedules its immediate successor — lands in the front slot and is
//!   popped again without ever touching the heap.

use std::collections::BinaryHeap;
use tq_core::Nanos;

/// Packs an event key so one `u128` compare orders by `(time, seq)`.
#[inline(always)]
fn pack(time: Nanos, seq: u64) -> u128 {
    ((time.as_nanos() as u128) << 64) | seq as u128
}

/// Recovers the timestamp from a packed key.
#[inline(always)]
fn key_time(key: u128) -> Nanos {
    Nanos::from_nanos((key >> 64) as u64)
}

/// A deterministic future-event list for discrete-event simulation.
///
/// Events scheduled for the same instant are delivered in the order they
/// were pushed (FIFO tie-breaking).
///
/// # Example
///
/// ```
/// use tq_core::Nanos;
/// use tq_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(Nanos::from_nanos(5), "b");
/// q.push(Nanos::from_nanos(5), "c");
/// q.push(Nanos::from_nanos(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Fast-path slot. Invariant: when `Some`, its key is strictly
    /// smaller than every key in `heap` (strict because keys are unique).
    front: Option<(u128, E)>,
    /// 4-ary min-heap over packed keys: children of `i` are
    /// `4i+1 ..= 4i+4`, parent of `i` is `(i-1)/4`.
    heap: Vec<(u128, E)>,
    next_seq: u64,
    last_popped: Nanos,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::with_capacity(0)
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            front: None,
            heap: Vec::with_capacity(cap),
            next_seq: 0,
            last_popped: Nanos::ZERO,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute virtual time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped time: scheduling
    /// into the past is always a model bug and silently reordering it would
    /// corrupt causality.
    pub fn push(&mut self, time: Nanos, event: E) {
        assert!(
            time >= self.last_popped,
            "event scheduled into the past: {time} < now {}",
            self.last_popped
        );
        let key = pack(time, self.next_seq);
        self.next_seq += 1;
        match self.front {
            Some((front_key, _)) => {
                if key < front_key {
                    // New global minimum: demote the old front into the
                    // heap and take its place.
                    let old = self.front.take().expect("front checked Some");
                    self.heap_push(old);
                    self.front = Some((key, event));
                } else {
                    self.heap_push((key, event));
                }
            }
            None => {
                // Front is free after a pop. If the new event precedes
                // everything in the heap it is the global minimum and can
                // skip the heap entirely — the common case when each
                // handled event immediately schedules its successor.
                if self.heap.first().map(|&(k, _)| key < k).unwrap_or(true) {
                    self.front = Some((key, event));
                } else {
                    self.heap_push((key, event));
                }
            }
        }
    }

    /// Bulk-schedules a batch of events, preserving batch order among
    /// simultaneous entries (same FIFO contract as repeated [`push`]es).
    ///
    /// When the queue is empty and the batch's times are ascending — the
    /// shape of a window's worth of inter-shard messages landing in a
    /// drained inbox — the whole batch is appended in one pass: an
    /// ascending run of packed keys is already a valid 4-ary min-heap, so
    /// no sift work is done at all. Any other shape falls back to
    /// per-event pushes (still correct, just not O(1) per event).
    ///
    /// [`push`]: EventQueue::push
    ///
    /// # Panics
    ///
    /// Panics if any event's time is earlier than the last popped time.
    pub fn extend_sorted<I: IntoIterator<Item = (Nanos, E)>>(&mut self, batch: I) {
        let mut it = batch.into_iter();
        if self.is_empty() {
            // Append while the run stays ascending; keys assigned in
            // batch order keep FIFO ties intact. Ascending keys at
            // positions 0..k satisfy heap[(i-1)/4] <= heap[i] trivially.
            let mut last = self.last_popped;
            for (time, event) in it.by_ref() {
                if time < last {
                    // Order broke mid-batch (or `time` predates the last
                    // pop): the appended prefix is a valid heap, so
                    // regular pushes — with their past-check — finish.
                    self.push(time, event);
                    break;
                }
                last = time;
                let key = pack(time, self.next_seq);
                self.next_seq += 1;
                self.heap.push((key, event));
            }
        }
        for (time, event) in it {
            self.push(time, event);
        }
    }

    /// Removes and returns the earliest event with its timestamp, advancing
    /// the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let (key, event) = match self.front.take() {
            Some(fe) => fe,
            None => self.heap_pop()?,
        };
        let time = key_time(key);
        debug_assert!(time >= self.last_popped, "heap violated time order");
        self.last_popped = time;
        self.popped += 1;
        Some((time, event))
    }

    /// Total events delivered over the queue's lifetime — the
    /// simulation's work counter (events/sec in the perf harness).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        match &self.front {
            Some((k, _)) => Some(key_time(*k)),
            None => self.heap.first().map(|&(k, _)| key_time(k)),
        }
    }

    /// The virtual time of the most recently popped event.
    pub fn now(&self) -> Nanos {
        self.last_popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + usize::from(self.front.is_some())
    }

    /// Whether no events are pending (the simulation has quiesced).
    pub fn is_empty(&self) -> bool {
        self.front.is_none() && self.heap.is_empty()
    }

    #[inline]
    fn heap_push(&mut self, item: (u128, E)) {
        self.heap.push(item);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[i].0 < self.heap[parent].0 {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn heap_pop(&mut self) -> Option<(u128, E)> {
        let n = self.heap.len();
        if n == 0 {
            return None;
        }
        self.heap.swap(0, n - 1);
        let item = self.heap.pop().expect("heap checked non-empty");
        let n = n - 1;
        let mut i = 0;
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            let last = (first + 4).min(n);
            let mut min = first;
            for c in first + 1..last {
                if self.heap[c].0 < self.heap[min].0 {
                    min = c;
                }
            }
            if self.heap[min].0 < self.heap[i].0 {
                self.heap.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
        Some(item)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Number of low key bits carrying the event tag in a [`TagQueue`].
const TAG_BITS: u32 = 16;

/// A deterministic future-event list for 16-bit event tags — the serving
/// engines' hot path.
///
/// Same ordering contract as [`EventQueue`] (`(time, sequence)`, FIFO
/// among simultaneous events), but the payload rides in the packed key
/// itself: `time << 64 | seq << 16 | tag`. Heap elements are bare
/// `u128`s, so they are half the size of `EventQueue`'s `(key, event)`
/// pairs, a sift-down's four-child scan reads a single cache line, and
/// every swap moves 16 bytes. The sequence number still occupies the
/// bits above the tag, so ties between simultaneous events break by
/// insertion order exactly as in [`EventQueue`] and [`reference`].
///
/// Capacity: tags are 16 bits (engines encode "event kind + worker
/// index" in them) and the sequence counter has 48 bits — ~2.8 × 10¹⁴
/// pushes per queue, far beyond any simulation run.
#[derive(Debug)]
pub struct TagQueue {
    /// Fast-path slot. `Some` key is strictly smaller than every heap key.
    front: Option<u128>,
    /// 4-ary min-heap over packed keys (children of `i`: `4i+1 ..= 4i+4`).
    heap: Vec<u128>,
    next_seq: u64,
    last_popped: Nanos,
    popped: u64,
}

impl TagQueue {
    /// Creates an empty queue with capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        TagQueue {
            front: None,
            heap: Vec::with_capacity(cap),
            next_seq: 0,
            last_popped: Nanos::ZERO,
            popped: 0,
        }
    }

    /// Schedules the event `tag` at absolute virtual time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped time (scheduling
    /// into the past is always a model bug), or — in debug builds — if
    /// the 48-bit sequence space is exhausted.
    #[inline(always)]
    pub fn push(&mut self, time: Nanos, tag: u16) {
        assert!(
            time >= self.last_popped,
            "event scheduled into the past: {time} < now {}",
            self.last_popped
        );
        debug_assert!(self.next_seq < 1 << (64 - TAG_BITS), "sequence space exhausted");
        let key = ((time.as_nanos() as u128) << 64)
            | ((self.next_seq as u128) << TAG_BITS)
            | tag as u128;
        self.next_seq += 1;
        match self.front {
            Some(front_key) => {
                if key < front_key {
                    self.heap_push(front_key);
                    self.front = Some(key);
                } else {
                    self.heap_push(key);
                }
            }
            None => {
                if self.heap.first().map(|&k| key < k).unwrap_or(true) {
                    self.front = Some(key);
                } else {
                    self.heap_push(key);
                }
            }
        }
    }

    /// Removes and returns the earliest event as `(time, tag)`, advancing
    /// the queue's notion of "now".
    #[inline(always)]
    pub fn pop(&mut self) -> Option<(Nanos, u16)> {
        let key = match self.front.take() {
            Some(k) => k,
            None => self.heap_pop()?,
        };
        let time = key_time(key);
        debug_assert!(time >= self.last_popped, "heap violated time order");
        self.last_popped = time;
        self.popped += 1;
        Some((time, key as u16))
    }

    /// Total events delivered over the queue's lifetime — the
    /// simulation's work counter (events/sec in the perf harness).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        match self.front {
            Some(k) => Some(key_time(k)),
            None => self.heap.first().map(|&k| key_time(k)),
        }
    }

    /// The virtual time of the most recently popped event.
    pub fn now(&self) -> Nanos {
        self.last_popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + usize::from(self.front.is_some())
    }

    /// Whether no events are pending (the simulation has quiesced).
    pub fn is_empty(&self) -> bool {
        self.front.is_none() && self.heap.is_empty()
    }

    #[inline]
    fn heap_push(&mut self, key: u128) {
        self.heap.push(key);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[i] < self.heap[parent] {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn heap_pop(&mut self) -> Option<u128> {
        let n = self.heap.len();
        if n == 0 {
            return None;
        }
        self.heap.swap(0, n - 1);
        let key = self.heap.pop().expect("heap checked non-empty");
        let n = n - 1;
        let mut i = 0;
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            let last = (first + 4).min(n);
            let mut min = first;
            for c in first + 1..last {
                if self.heap[c] < self.heap[min] {
                    min = c;
                }
            }
            if self.heap[min] < self.heap[i] {
                self.heap.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
        Some(key)
    }
}

/// The seed's `BinaryHeap`-based event queue, preserved verbatim as the
/// differential-testing oracle (mirroring `tq_sim::metrics::reference`):
/// property tests assert the packed 4-ary queue delivers the exact same
/// `(time, event)` stream, and the reference serving-system models in
/// `tq-queueing` run on it so whole-simulation completion streams can be
/// pinned against the seed semantics.
pub mod reference {
    use super::*;
    use std::cmp::Ordering;

    struct Entry<E> {
        time: Nanos,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl<E> Eq for Entry<E> {}

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want the earliest first.
            (other.time, other.seq).cmp(&(self.time, self.seq))
        }
    }

    impl<E: std::fmt::Debug> std::fmt::Debug for Entry<E> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Entry")
                .field("time", &self.time)
                .field("seq", &self.seq)
                .field("event", &self.event)
                .finish()
        }
    }

    /// The seed's deterministic future-event list (generic binary heap).
    #[derive(Debug)]
    pub struct EventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        last_popped: Nanos,
        popped: u64,
    }

    impl<E> EventQueue<E> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            EventQueue::with_capacity(0)
        }

        /// Creates an empty queue with capacity for `cap` pending events.
        pub fn with_capacity(cap: usize) -> Self {
            EventQueue {
                heap: BinaryHeap::with_capacity(cap),
                next_seq: 0,
                last_popped: Nanos::ZERO,
                popped: 0,
            }
        }

        /// Schedules `event` at absolute virtual time `time`.
        ///
        /// # Panics
        ///
        /// Panics if `time` is earlier than the last popped time.
        pub fn push(&mut self, time: Nanos, event: E) {
            assert!(
                time >= self.last_popped,
                "event scheduled into the past: {time} < now {}",
                self.last_popped
            );
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { time, seq, event });
        }

        /// Removes and returns the earliest event with its timestamp.
        pub fn pop(&mut self) -> Option<(Nanos, E)> {
            self.heap.pop().map(|e| {
                debug_assert!(e.time >= self.last_popped, "heap violated time order");
                self.last_popped = e.time;
                self.popped += 1;
                (e.time, e.event)
            })
        }

        /// Total events delivered over the queue's lifetime.
        pub fn popped(&self) -> u64 {
            self.popped
        }

        /// Timestamp of the next event without removing it.
        pub fn peek_time(&self) -> Option<Nanos> {
            self.heap.peek().map(|e| e.time)
        }

        /// The virtual time of the most recently popped event.
        pub fn now(&self) -> Nanos {
            self.last_popped
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// Whether no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }
    }

    impl<E> Default for EventQueue<E> {
        fn default() -> Self {
            EventQueue::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(30), 3);
        q.push(Nanos::from_nanos(10), 1);
        q.push(Nanos::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Nanos::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(5), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(10), ());
        q.pop();
        q.push(Nanos::from_nanos(9), ());
    }

    #[test]
    fn same_instant_as_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(10), 1);
        q.pop();
        q.push(Nanos::from_nanos(10), 2); // zero-delay follow-up event
        assert_eq!(q.pop(), Some((Nanos::from_nanos(10), 2)));
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Nanos::from_nanos(3), ());
        q.push(Nanos::from_nanos(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(1)));
    }

    #[test]
    fn front_slot_fast_path_chain() {
        // pop → push(successor that is the new minimum) → pop never
        // reorders: the successor must come out before the far event.
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(1_000_000), "far");
        q.push(Nanos::from_nanos(1), "start");
        let mut t = 1u64;
        let mut hops = 0;
        loop {
            let (now, ev) = q.pop().expect("non-empty");
            if ev == "far" {
                assert_eq!(now, Nanos::from_nanos(1_000_000));
                break;
            }
            assert_eq!(now, Nanos::from_nanos(t));
            hops += 1;
            if t < 100 {
                t += 1;
                q.push(Nanos::from_nanos(t), "hop");
            }
        }
        assert_eq!(hops, 100);
        assert!(q.is_empty());
    }

    #[test]
    fn front_slot_demotes_on_earlier_push() {
        // Pushing successively earlier events keeps popping globally
        // sorted even though each push displaces the front slot.
        let mut q = EventQueue::new();
        for t in (1..=50u64).rev() {
            q.push(Nanos::from_nanos(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn tag_queue_matches_reference_on_mixed_workload() {
        // Same deterministic interleaving as the generic-queue test
        // below: the tag-in-key packing must not change the delivery
        // order in any way.
        let mut fast = TagQueue::with_capacity(8);
        let mut slow = reference::EventQueue::with_capacity(8);
        let mut state = 0xFEED5EEDu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for i in 0..10_000u64 {
            if rng() % 3 == 0 && !fast.is_empty() {
                let a = fast.pop();
                let b = slow.pop();
                assert_eq!(a, b);
                now = fast.now().as_nanos();
            } else {
                let t = now + rng() % 1_000;
                fast.push(Nanos::from_nanos(t), i as u16);
                slow.push(Nanos::from_nanos(t), i as u16);
            }
            assert_eq!(fast.len(), slow.len());
        }
        loop {
            let a = fast.pop();
            let b = slow.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(fast.popped(), slow.popped());
    }

    #[test]
    fn extend_sorted_matches_pushes() {
        // Sorted batch into an empty queue (the bulk fast path), unsorted
        // batch (fallback), and a batch into a non-empty queue must all
        // behave exactly like the equivalent push loop.
        let batches: [&[u64]; 3] = [&[1, 2, 2, 5, 9], &[5, 1, 9, 2, 2], &[4, 4, 8]];
        for (i, batch) in batches.iter().enumerate() {
            let mut bulk = EventQueue::with_capacity(4);
            let mut loop_q = EventQueue::with_capacity(4);
            if i == 2 {
                bulk.push(Nanos::from_nanos(6), 999);
                loop_q.push(Nanos::from_nanos(6), 999);
            }
            bulk.extend_sorted(batch.iter().map(|&t| (Nanos::from_nanos(t), t)));
            for &t in batch.iter() {
                loop_q.push(Nanos::from_nanos(t), t);
            }
            loop {
                let (a, b) = (bulk.pop(), loop_q.pop());
                assert_eq!(a, b, "batch {i} diverged");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn extend_sorted_rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(10), 0);
        q.pop();
        q.extend_sorted([(Nanos::from_nanos(9), 1)]);
    }

    #[test]
    fn tag_queue_ties_pop_fifo() {
        let mut q = TagQueue::with_capacity(4);
        let t = Nanos::from_nanos(7);
        for i in 0..100u16 {
            q.push(t, i);
        }
        let order: Vec<u16> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn matches_reference_on_mixed_workload() {
        // Deterministic pseudo-random interleaving of pushes and pops,
        // mirrored into the seed queue; streams must be identical.
        let mut fast = EventQueue::with_capacity(8);
        let mut slow = reference::EventQueue::with_capacity(8);
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for i in 0..10_000u64 {
            if rng() % 3 == 0 && !fast.is_empty() {
                let a = fast.pop();
                let b = slow.pop();
                assert_eq!(a, b);
                now = fast.now().as_nanos();
            } else {
                let t = now + rng() % 1_000;
                fast.push(Nanos::from_nanos(t), i);
                slow.push(Nanos::from_nanos(t), i);
            }
            assert_eq!(fast.len(), slow.len());
            assert_eq!(fast.peek_time(), slow.peek_time());
        }
        loop {
            let a = fast.pop();
            let b = slow.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(fast.popped(), slow.popped());
    }
}
