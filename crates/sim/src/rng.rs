//! Seeded random sampling for workloads and policies.
//!
//! Wraps a ChaCha8 stream cipher generator: fast, high quality, and — the
//! property we actually need — *reproducible across platforms and `rand`
//! versions*, so every figure regenerates identically from its seed.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tq_core::Nanos;

/// A deterministic random source for simulations.
///
/// # Example
///
/// ```
/// use tq_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.u64(), b.u64());
/// let gap = a.exp_nanos(1_000.0);
/// assert!(gap.as_nanos() < 1_000_000); // exponential with mean 1µs
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: ChaCha8Rng,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent stream for a sub-component (e.g. a separate
    /// stream for arrivals vs. service times), so adding draws to one
    /// component never perturbs another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let mut child = ChaCha8Rng::seed_from_u64(self.rng.gen::<u64>() ^ stream);
        child.set_stream(stream);
        SimRng { rng: child }
    }

    /// Uniform 64-bit value.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.rng.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.rng.gen::<f64>() < p
    }

    /// Exponentially distributed duration with the given mean (inverse
    /// transform sampling). This is the inter-arrival sampler for the
    /// paper's open-loop Poisson load generator.
    ///
    /// # Panics
    ///
    /// Panics if `mean_nanos` is not strictly positive and finite.
    #[inline]
    pub fn exp_nanos(&mut self, mean_nanos: f64) -> Nanos {
        assert!(
            mean_nanos.is_finite() && mean_nanos > 0.0,
            "invalid mean: {mean_nanos}"
        );
        // 1 - u in (0, 1] avoids ln(0).
        let u = 1.0 - self.rng.gen::<f64>();
        Nanos::from_nanos_f64(-mean_nanos * u.ln())
    }

    /// Picks an index from a discrete distribution given cumulative weights
    /// (`cum` must be non-decreasing and end at the total weight).
    ///
    /// # Panics
    ///
    /// Panics if `cum` is empty or its last element is not positive.
    #[inline]
    pub fn weighted_index(&mut self, cum: &[f64]) -> usize {
        let total = *cum.last().expect("empty weight table");
        assert!(total > 0.0, "weights must sum to a positive value");
        let x = self.rng.gen::<f64>() * total;
        // Linear scan: the workload mixes here have ≤ 5 classes, and a scan
        // beats binary search at that size.
        cum.iter().position(|&c| x < c).unwrap_or(cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_across_instances() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root1 = SimRng::new(7);
        let mut root2 = SimRng::new(7);
        let mut a1 = root1.fork(1);
        let mut a2 = root2.fork(1);
        // Same lineage ⇒ same stream.
        assert_eq!(a1.u64(), a2.u64());
        // Different stream ids diverge.
        let mut b = SimRng::new(7).fork(2);
        assert_ne!(a1.u64(), b.u64());
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(42);
        let n = 200_000;
        let total: u64 = (0..n).map(|_| r.exp_nanos(500.0).as_nanos()).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 500.0).abs() < 5.0,
            "empirical mean {mean} far from 500"
        );
    }

    #[test]
    fn weighted_index_matches_weights() {
        let mut r = SimRng::new(1);
        // 99.5% class 0, 0.5% class 1 — the Extreme Bimodal mix.
        let cum = [0.995, 1.0];
        let n = 100_000;
        let ones = (0..n).filter(|_| r.weighted_index(&cum) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!(
            (frac - 0.005).abs() < 0.002,
            "class-1 fraction {frac} far from 0.005"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "invalid mean")]
    fn exp_rejects_nonpositive_mean() {
        let _ = SimRng::new(0).exp_nanos(0.0);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn chance_rejects_out_of_range() {
        let _ = SimRng::new(0).chance(1.5);
    }
}
