//! Tail-latency metrics.
//!
//! The paper reports the 99.9th percentile of end-to-end latency (or
//! server-side sojourn time) per job class, and slowdown (sojourn ÷ service)
//! for multi-modal workloads, discarding the first 10% of samples as warm-up
//! (§5.1). This module implements exactly that pipeline.
//!
//! The recorder is a *single-pass* pipeline: the warm-up cutoff is found
//! by an O(n) selection (no full arrival sort on the summary path; the
//! slower per-query accessors amortize one sort), classes are
//! bucketed in one scan, and [`ClassRecorder::summarize_all`] produces
//! end-to-end, sojourn, and overall-slowdown statistics together — the
//! end-to-end and sojourn summaries even share one sorted latency array
//! per class, since adding a constant RTT commutes with nearest-rank
//! percentiles. The pre-optimization multi-pass implementation survives
//! in [`reference`] as the differential-testing oracle.

use serde::{Deserialize, Serialize};
use tq_core::job::Completion;
use tq_core::{ClassId, Nanos};

/// A sample collector with percentile queries (nearest-rank definition).
///
/// # Example
///
/// ```
/// use tq_sim::TailStats;
///
/// let mut s = TailStats::new();
/// for v in 1..=100u64 {
///     s.record(v);
/// }
/// assert_eq!(s.percentile(50.0), 50);
/// assert_eq!(s.percentile(99.0), 99);
/// assert_eq!(s.percentile(100.0), 100);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TailStats {
    samples: Vec<u64>,
    #[serde(skip)]
    sorted: bool,
}

impl TailStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        TailStats::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Merges another collector's samples into this one (used to fold
    /// per-client tails into a run-wide distribution).
    pub fn absorb(&mut self, other: &TailStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        self.try_mean().unwrap_or(0.0)
    }

    /// Arithmetic mean, or `None` with no samples — for consumers (like
    /// a feedback controller window) that must distinguish "no traffic"
    /// from "zero latency".
    pub fn try_mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64)
    }

    /// Largest sample, or 0 with no samples.
    pub fn max(&self) -> u64 {
        self.try_max().unwrap_or(0)
    }

    /// Largest sample, or `None` with no samples.
    pub fn try_max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Nearest-rank percentile: the smallest sample such that at least
    /// `p`% of samples are ≤ it. Returns 0 with no samples.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
        self.try_percentile(p).unwrap_or(0)
    }

    /// Nearest-rank percentile, or `None` with no samples. An empty
    /// window is *absence of evidence*, not a perfect tail: callers that
    /// feed a controller must treat `None` differently from 0.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn try_percentile(&mut self, p: f64) -> Option<u64> {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64 - 1e-9).ceil() as usize;
        Some(self.samples[rank.clamp(1, n) - 1])
    }

    /// Convenience: the 99.9th percentile the paper reports everywhere.
    pub fn p999(&mut self) -> u64 {
        self.percentile(99.9)
    }
}

impl FromIterator<u64> for TailStats {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        TailStats {
            samples: iter.into_iter().collect(),
            sorted: false,
        }
    }
}

impl Extend<u64> for TailStats {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.samples.extend(iter);
        self.sorted = false;
    }
}

/// Everything [`ClassRecorder::summarize_all`] produces in one pass:
/// the per-class end-to-end summaries, the per-class sojourn-only
/// summaries, and the class-blind overall slowdown tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Per-class summaries with the fixed extra latency (network RTT)
    /// added to every sojourn, ordered by class id.
    pub classes_e2e: Vec<ClassSummary>,
    /// Per-class summaries of bare sojourn time (extra = 0), ordered by
    /// class id.
    pub classes_sojourn: Vec<ClassSummary>,
    /// The overall (class-blind) 99.9th-percentile slowdown.
    pub overall_slowdown_p999: f64,
}

/// Per-class summary produced by [`ClassRecorder::summarize`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// The class summarized.
    pub class: ClassId,
    /// Completions counted after warm-up discarding.
    pub count: usize,
    /// Median latency (sojourn + any fixed extra) in nanoseconds.
    pub p50: Nanos,
    /// 99th percentile latency.
    pub p99: Nanos,
    /// 99.9th percentile latency — the paper's headline metric.
    pub p999: Nanos,
    /// Mean latency.
    pub mean: Nanos,
    /// 99.9th percentile slowdown (sojourn ÷ service; the fixed extra is
    /// *not* included, matching how the paper computes server slowdown).
    pub slowdown_p999: f64,
    /// Mean slowdown.
    pub slowdown_mean: f64,
}

/// Collects [`Completion`]s and produces the paper's metrics: per-class
/// latency percentiles with warm-up discarding and optional fixed
/// network RTT added (end-to-end vs. sojourn reporting).
///
/// # Example
///
/// ```
/// use tq_core::job::Completion;
/// use tq_core::{ClassId, JobId, Nanos};
/// use tq_sim::ClassRecorder;
///
/// let mut rec = ClassRecorder::new(0.0);
/// rec.record(Completion {
///     id: JobId(0), class: ClassId(0),
///     arrival: Nanos::ZERO,
///     service: Nanos::from_nanos(500),
///     finish: Nanos::from_micros(1),
/// });
/// let all = rec.summarize(Nanos::ZERO);
/// assert_eq!(all[0].p999, Nanos::from_micros(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClassRecorder {
    completions: Vec<Completion>,
    warmup_frac: f64,
    /// Whether `completions` is currently sorted by `(arrival, id)`.
    sorted: bool,
    arrival_sorts: u64,
}

impl ClassRecorder {
    /// Creates a recorder that discards the earliest-arriving
    /// `warmup_frac` fraction of samples (the paper uses 0.1).
    ///
    /// # Panics
    ///
    /// Panics if `warmup_frac` is not within `[0, 1)`.
    pub fn new(warmup_frac: f64) -> Self {
        ClassRecorder::with_capacity(warmup_frac, 0)
    }

    /// Like [`ClassRecorder::new`], preallocating room for `expected`
    /// completions so a simulation never reallocates on the record path.
    ///
    /// # Panics
    ///
    /// Panics if `warmup_frac` is not within `[0, 1)`.
    pub fn with_capacity(warmup_frac: f64, expected: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&warmup_frac),
            "warm-up fraction out of range: {warmup_frac}"
        );
        ClassRecorder {
            completions: Vec::with_capacity(expected),
            warmup_frac,
            sorted: false,
            arrival_sorts: 0,
        }
    }

    /// Records a completed job.
    pub fn record(&mut self, c: Completion) {
        self.completions.push(c);
        self.sorted = false;
    }

    /// Records a whole simulation's completions at once by taking the
    /// vector's contents (leaving `batch` empty, capacity intact). Into
    /// an empty recorder this is a pointer swap — no per-completion
    /// copying — which is how `run_once` feeds each sweep point's
    /// completions in; [`ClassRecorder::into_completions`] hands the
    /// buffer back for reuse.
    pub fn record_all(&mut self, batch: &mut Vec<Completion>) {
        if self.completions.is_empty() {
            std::mem::swap(&mut self.completions, batch);
        } else {
            self.completions.append(batch);
        }
        self.sorted = false;
    }

    /// Consumes the recorder, returning the recorded completions (in
    /// unspecified order) so a caller can reuse the allocation.
    pub fn into_completions(self) -> Vec<Completion> {
        self.completions
    }

    /// Total completions recorded (before warm-up discarding).
    pub fn count(&self) -> usize {
        self.completions.len()
    }

    /// The raw recorded completions, in unspecified order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// How many times the completion vector has actually been sorted by
    /// arrival. [`ClassRecorder::summarize_all`] needs no sort (it
    /// partitions), so a recorder driven only through it reports 0; the
    /// per-query accessors sort at most once per batch of recordings.
    /// Diagnostic for perf tests.
    pub fn arrival_sorts(&self) -> u64 {
        self.arrival_sorts
    }

    /// Produces every metric [`crate::metrics`] knows in a single pass
    /// over the completions: one O(n) warm-up partition (no arrival
    /// sort), one bucketing scan, and O(n) order-statistic selections
    /// per class in place of full value sorts. The end-to-end and
    /// sojourn summaries share each selection — adding the constant
    /// `extra` commutes with nearest-rank percentiles.
    ///
    /// `extra` is the fixed latency added to each sojourn for the
    /// end-to-end view (e.g. the network RTT); the sojourn view always
    /// uses zero. Every percentile equals the multi-pass
    /// [`reference::summarize_all`] exactly: the warm-up cutoff is found
    /// by selecting the k-th smallest `(arrival, id)` key, so the kept
    /// *set* matches the sorted reference while the full completion sort
    /// (the dominant cost on big runs) never happens. The means can
    /// differ from the reference in the last ULP because they are
    /// accumulated in scan order instead of ascending order.
    pub fn summarize_all(&mut self, extra: Nanos) -> RunSummary {
        let kept: &[Completion] = if self.sorted {
            self.kept()
        } else {
            let len = self.completions.len();
            let skip = (len as f64 * self.warmup_frac).floor() as usize;
            if skip > 0 {
                // Partition around the skip-th smallest key: everything
                // before index `skip` is the discarded warm-up set —
                // exactly the elements an arrival sort would discard.
                self.completions
                    .select_nth_unstable_by_key(skip, |c| (c.arrival, c.id));
            }
            &self.completions[skip..]
        };

        // A cheap counting pass sizes every bucket exactly, so the fill
        // pass below never reallocates. Runs have a handful of classes at
        // most, so a linear probe over a sorted flat vec beats a map.
        let mut counts: Vec<(ClassId, usize)> = Vec::new();
        for c in kept {
            match counts.iter_mut().find(|&&mut (id, _)| id == c.class) {
                Some((_, n)) => *n += 1,
                None => counts.push((c.class, 1)),
            }
        }
        counts.sort_unstable_by_key(|&(id, _)| id);

        // One scan: bucket sojourns and slowdowns per class, and collect
        // the class-blind slowdowns for the overall tail.
        let mut buckets: Vec<(ClassId, Vec<u64>, Vec<f64>)> = counts
            .iter()
            .map(|&(id, n)| (id, Vec::with_capacity(n), Vec::with_capacity(n)))
            .collect();
        let mut all_slow: Vec<f64> = Vec::with_capacity(kept.len());
        for c in kept {
            let slowdown = c.slowdown();
            let (_, soj, slow) = buckets
                .iter_mut()
                .find(|&&mut (id, _, _)| id == c.class)
                .expect("every class was counted");
            soj.push(c.sojourn().as_nanos());
            slow.push(slowdown);
            all_slow.push(slowdown);
        }

        let extra_ns = extra.as_nanos();
        let mut classes_e2e = Vec::with_capacity(buckets.len());
        let mut classes_sojourn = Vec::with_capacity(buckets.len());
        for (class, mut soj, mut slow) in buckets {
            let n = soj.len();
            // Order-statistic selection instead of full sorts: each
            // percentile is an exact k-th smallest, found in O(n) rather
            // than O(n log n). Values are identical to sorting; only the
            // means (summed in scan order rather than ascending) can
            // differ from [`reference`] in the last ULP.
            let [p50, p99, p999] =
                select_ranks_u64(&mut soj, [rank_index(n, 50.0), rank_index(n, 99.0), rank_index(n, 99.9)]);
            let soj_mean = soj.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
            let e2e_mean = soj.iter().map(|&v| (v + extra_ns) as f64).sum::<f64>() / n as f64;
            let slowdown_mean = slow.iter().sum::<f64>() / n as f64;
            let slowdown_p999 = select_rank_f64(&mut slow, rank_index(n, 99.9));
            classes_e2e.push(ClassSummary {
                class,
                count: n,
                p50: Nanos::from_nanos(p50 + extra_ns),
                p99: Nanos::from_nanos(p99 + extra_ns),
                p999: Nanos::from_nanos(p999 + extra_ns),
                mean: Nanos::from_nanos(e2e_mean.round() as u64),
                slowdown_p999,
                slowdown_mean,
            });
            classes_sojourn.push(ClassSummary {
                class,
                count: n,
                p50: Nanos::from_nanos(p50),
                p99: Nanos::from_nanos(p99),
                p999: Nanos::from_nanos(p999),
                mean: Nanos::from_nanos(soj_mean.round() as u64),
                slowdown_p999,
                slowdown_mean,
            });
        }

        let overall_slowdown_p999 = if all_slow.is_empty() {
            0.0
        } else {
            let rank = rank_index(all_slow.len(), 99.9);
            select_rank_f64(&mut all_slow, rank)
        };
        RunSummary {
            classes_e2e,
            classes_sojourn,
            overall_slowdown_p999,
        }
    }

    /// Summarizes every class present, ordered by class id. `extra` is a
    /// fixed latency added to each sojourn (e.g. the network RTT when
    /// reporting end-to-end latency; pass [`Nanos::ZERO`] for sojourn).
    ///
    /// Needing only one view? This still computes the slowdown columns
    /// (they are shared work); use [`ClassRecorder::summarize_all`] when
    /// you need more than one.
    pub fn summarize(&mut self, extra: Nanos) -> Vec<ClassSummary> {
        self.summarize_all(extra).classes_e2e
    }

    /// The overall (class-blind) slowdown percentile, as Figure 8 reports
    /// for TPC-C.
    pub fn overall_slowdown(&mut self, p: f64) -> f64 {
        let mut slow: Vec<f64> = self.kept().iter().map(|c| c.slowdown()).collect();
        percentile_f64(&mut slow, p)
    }

    /// The overall latency percentile across all classes.
    pub fn overall_latency(&mut self, p: f64, extra: Nanos) -> Nanos {
        let mut lat: Vec<u64> = self
            .kept()
            .iter()
            .map(|c| (c.sojourn() + extra).as_nanos())
            .collect();
        if lat.is_empty() {
            return Nanos::ZERO;
        }
        lat.sort_unstable();
        Nanos::from_nanos(lat[rank_index(lat.len(), p)])
    }

    /// Completions surviving warm-up discarding, ordered by arrival.
    /// Sorts in place at most once between mutations.
    fn kept(&mut self) -> &[Completion] {
        if !self.sorted {
            self.completions
                .sort_unstable_by_key(|c| (c.arrival, c.id));
            self.sorted = true;
            self.arrival_sorts += 1;
        }
        let skip = (self.completions.len() as f64 * self.warmup_frac).floor() as usize;
        &self.completions[skip.min(self.completions.len())..]
    }
}

/// Index of the nearest-rank `p`th percentile in a sorted slice of
/// length `n ≥ 1`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 100]` — the same contract
/// [`TailStats::percentile`] enforces, checked in every build profile
/// (a release build must not silently clamp a bogus percentile to the
/// max sample).
fn rank_index(n: usize, p: f64) -> usize {
    assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
    let rank = ((p / 100.0) * n as f64 - 1e-9).ceil() as usize;
    rank.clamp(1, n) - 1
}

/// The k-th smallest values of `v` for ascending ranks, via repeated
/// `select_nth_unstable` on the shrinking right partition — O(n)
/// expected total, and each result equals `sorted(v)[rank]` exactly.
fn select_ranks_u64<const K: usize>(v: &mut [u64], ranks: [usize; K]) -> [u64; K] {
    let mut out = [0u64; K];
    let mut base = 0;
    for (i, &rank) in ranks.iter().enumerate() {
        debug_assert!(i == 0 || rank >= ranks[i - 1], "ranks must be ascending");
        let rel = rank - base;
        out[i] = *v[base..].select_nth_unstable(rel).1;
        base = rank;
    }
    out
}

/// The k-th smallest of `v` (exactly `sorted(v)[rank]`), in O(n).
///
/// # Panics
///
/// Panics if any value is NaN.
fn select_rank_f64(v: &mut [f64], rank: usize) -> f64 {
    *v.select_nth_unstable_by(rank, |a, b| a.partial_cmp(b).expect("NaN slowdown"))
        .1
}

/// The seed's multi-pass metrics implementation, preserved verbatim as
/// the differential-testing oracle: property tests assert the
/// single-pass [`ClassRecorder::summarize_all`] reproduces these
/// results exactly, and `bench_sim` measures its speedup against them.
pub mod reference {
    use super::{percentile_f64, ClassSummary, RunSummary, TailStats};
    use tq_core::job::Completion;
    use tq_core::{ClassId, Nanos};

    /// Multi-pass equivalent of [`super::ClassRecorder::summarize_all`]:
    /// two independent `summarize` passes plus an `overall_slowdown`
    /// pass, each re-sorting and re-filtering from scratch.
    pub fn summarize_all(completions: &[Completion], warmup_frac: f64, extra: Nanos) -> RunSummary {
        RunSummary {
            classes_e2e: summarize(completions, warmup_frac, extra),
            classes_sojourn: summarize(completions, warmup_frac, Nanos::ZERO),
            overall_slowdown_p999: overall_slowdown(completions, warmup_frac, 99.9),
        }
    }

    /// The seed's `ClassRecorder::summarize`: clones and sorts the
    /// completions, then filters the kept slice once per class.
    pub fn summarize(completions: &[Completion], warmup_frac: f64, extra: Nanos) -> Vec<ClassSummary> {
        let kept = after_warmup(completions, warmup_frac);
        let mut classes: Vec<ClassId> = kept.iter().map(|c| c.class).collect();
        classes.sort_unstable();
        classes.dedup();
        classes
            .into_iter()
            .map(|class| {
                let mut lat = TailStats::new();
                let mut slow = Vec::new();
                for c in kept.iter().filter(|c| c.class == class) {
                    lat.record((c.sojourn() + extra).as_nanos());
                    slow.push(c.slowdown());
                }
                let slowdown_p999 = percentile_f64(&mut slow, 99.9);
                let slowdown_mean = slow.iter().sum::<f64>() / slow.len() as f64;
                ClassSummary {
                    class,
                    count: lat.count(),
                    p50: Nanos::from_nanos(lat.percentile(50.0)),
                    p99: Nanos::from_nanos(lat.percentile(99.0)),
                    p999: Nanos::from_nanos(lat.percentile(99.9)),
                    mean: Nanos::from_nanos(lat.mean().round() as u64),
                    slowdown_p999,
                    slowdown_mean,
                }
            })
            .collect()
    }

    /// The seed's `ClassRecorder::overall_slowdown`.
    pub fn overall_slowdown(completions: &[Completion], warmup_frac: f64, p: f64) -> f64 {
        let mut slow: Vec<f64> = after_warmup(completions, warmup_frac)
            .iter()
            .map(|c| c.slowdown())
            .collect();
        percentile_f64(&mut slow, p)
    }

    fn after_warmup(completions: &[Completion], warmup_frac: f64) -> Vec<Completion> {
        let mut by_arrival = completions.to_vec();
        by_arrival.sort_unstable_by_key(|c| (c.arrival, c.id));
        let skip = (by_arrival.len() as f64 * warmup_frac).floor() as usize;
        by_arrival.split_off(skip.min(by_arrival.len()))
    }
}

/// A log₂-bucketed histogram of nanosecond samples — the compact way to
/// eyeball a latency distribution's whole body and tail at once.
///
/// # Example
///
/// ```
/// use tq_sim::metrics::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// h.record(700);      // bucket [512, 1024)
/// h.record(900);
/// h.record(100_000);  // far tail
/// assert_eq!(h.count(), 3);
/// let rows = h.buckets();
/// assert_eq!(rows[0], (512, 1024, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>, // always 64 buckets
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: vec![0; 64],
            total: 0,
        }
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample (nanoseconds; 0 lands in the first bucket).
    pub fn record(&mut self, v: u64) {
        let bucket = 63 - v.max(1).leading_zeros() as usize;
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)`, in order.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, 1u64 << (i + 1).min(63), c))
            .collect()
    }

    /// The sample value below which at least `p`% of samples fall,
    /// resolved to its bucket's upper bound (a coarse percentile for
    /// quick looks; use [`TailStats`] for exact ones).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn approx_percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

impl Extend<u64> for LogHistogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Nearest-rank percentile of a float slice (sorts in place). Returns 0
/// for an empty slice.
fn percentile_f64(v: &mut [f64], p: f64) -> f64 {
    assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
    if v.is_empty() {
        return 0.0;
    }
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN slowdown"));
    let rank = ((p / 100.0) * v.len() as f64 - 1e-9).ceil() as usize;
    v[rank.clamp(1, v.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_core::JobId;

    fn comp(id: u64, class: u16, arrival_ns: u64, service_ns: u64, finish_ns: u64) -> Completion {
        Completion {
            id: JobId(id),
            class: ClassId(class),
            arrival: Nanos::from_nanos(arrival_ns),
            service: Nanos::from_nanos(service_ns),
            finish: Nanos::from_nanos(finish_ns),
        }
    }

    #[test]
    fn log_histogram_buckets_and_percentiles() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 1, 3, 900, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let rows = h.buckets();
        assert_eq!(rows[0], (1, 2, 3)); // 0, 1, 1 clamp into [1,2)
        assert_eq!(rows[1], (2, 4, 1));
        // 50% of 6 = 3rd sample → the [1,2) bucket, upper bound 2.
        assert_eq!(h.approx_percentile(50.0), 2);
        assert!(h.approx_percentile(100.0) >= 1_000_000);
    }

    #[test]
    fn log_histogram_empty() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.buckets().is_empty());
        assert_eq!(h.approx_percentile(99.9), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s: TailStats = (1..=1000u64).collect();
        assert_eq!(s.percentile(99.9), 999);
        assert_eq!(s.percentile(0.1), 1);
        assert_eq!(s.percentile(100.0), 1000);
    }

    #[test]
    fn percentile_single_sample() {
        let mut s = TailStats::new();
        s.record(42);
        assert_eq!(s.percentile(50.0), 42);
        assert_eq!(s.p999(), 42);
    }

    #[test]
    fn percentile_empty_is_zero() {
        let mut s = TailStats::new();
        assert_eq!(s.p999(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn try_accessors_surface_emptiness() {
        let mut s = TailStats::new();
        assert_eq!(s.try_percentile(99.9), None);
        assert_eq!(s.try_mean(), None);
        assert_eq!(s.try_max(), None);
        s.record(7);
        assert_eq!(s.try_percentile(99.9), Some(7));
        assert_eq!(s.try_mean(), Some(7.0));
        assert_eq!(s.try_max(), Some(7));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn try_percentile_rejects_out_of_range_even_when_empty() {
        let mut s = TailStats::new();
        let _ = s.try_percentile(0.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn rank_index_rejects_out_of_range_in_all_profiles() {
        // Regression: `rank_index` used to debug_assert only, so a
        // release build silently clamped e.g. p=200 to the max sample.
        // `overall_latency` is the user-supplied-percentile path into it.
        let mut rec = ClassRecorder::new(0.0);
        rec.record(comp(0, 0, 0, 100, 200));
        let _ = rec.overall_latency(200.0, Nanos::ZERO);
    }

    #[test]
    fn recording_after_query_resorts() {
        let mut s = TailStats::new();
        s.record(10);
        assert_eq!(s.p999(), 10);
        s.record(5);
        assert_eq!(s.percentile(50.0), 5);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_zero() {
        let mut s = TailStats::new();
        s.record(1);
        let _ = s.percentile(0.0);
    }

    #[test]
    fn recorder_separates_classes() {
        let mut rec = ClassRecorder::new(0.0);
        rec.record(comp(0, 0, 0, 500, 1_000));
        rec.record(comp(1, 1, 0, 1_000, 5_000));
        rec.record(comp(2, 0, 10, 500, 600));
        let sums = rec.summarize(Nanos::ZERO);
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].class, ClassId(0));
        assert_eq!(sums[0].count, 2);
        assert_eq!(sums[1].count, 1);
        assert_eq!(sums[1].p999, Nanos::from_nanos(5_000));
    }

    #[test]
    fn warmup_discards_earliest_arrivals() {
        let mut rec = ClassRecorder::new(0.5);
        rec.record(comp(0, 0, 0, 100, 10_000)); // slow warm-up sample
        rec.record(comp(1, 0, 100, 100, 300));
        let sums = rec.summarize(Nanos::ZERO);
        assert_eq!(sums[0].count, 1);
        assert_eq!(sums[0].p999, Nanos::from_nanos(200));
    }

    #[test]
    fn extra_latency_added_to_latency_not_slowdown() {
        let mut rec = ClassRecorder::new(0.0);
        rec.record(comp(0, 0, 0, 500, 1_000));
        let sums = rec.summarize(Nanos::from_micros(10));
        assert_eq!(sums[0].p999, Nanos::from_nanos(11_000));
        assert!((sums[0].slowdown_p999 - 2.0).abs() < 1e-12);
    }

    /// Asserts the single-pass summary matches the multi-pass reference:
    /// percentiles exactly, means within the ULP slack the different
    /// summation order permits (±1 ns latency, 1e-9 relative slowdown).
    pub(super) fn assert_matches_reference(fast: &RunSummary, slow: &RunSummary) {
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
        let check = |f: &[ClassSummary], s: &[ClassSummary]| {
            assert_eq!(f.len(), s.len(), "class sets differ");
            for (a, b) in f.iter().zip(s) {
                assert_eq!((a.class, a.count), (b.class, b.count));
                assert_eq!((a.p50, a.p99, a.p999), (b.p50, b.p99, b.p999), "class {}", a.class);
                assert!(
                    a.mean.as_nanos().abs_diff(b.mean.as_nanos()) <= 1,
                    "mean {} vs {}",
                    a.mean,
                    b.mean
                );
                assert_eq!(a.slowdown_p999, b.slowdown_p999, "class {}", a.class);
                assert!(
                    close(a.slowdown_mean, b.slowdown_mean),
                    "slowdown mean {} vs {}",
                    a.slowdown_mean,
                    b.slowdown_mean
                );
            }
        };
        check(&fast.classes_e2e, &slow.classes_e2e);
        check(&fast.classes_sojourn, &slow.classes_sojourn);
        assert_eq!(fast.overall_slowdown_p999, slow.overall_slowdown_p999);
    }

    #[test]
    fn summarize_all_matches_reference() {
        let mut rec = ClassRecorder::new(0.1);
        // A mix of classes, out-of-order arrivals, and duplicate arrival
        // times (id breaks the tie).
        let raw = [
            comp(3, 1, 40, 200, 900),
            comp(0, 0, 0, 100, 350),
            comp(1, 0, 20, 100, 150),
            comp(5, 2, 20, 400, 2_000),
            comp(2, 1, 10, 300, 700),
            comp(4, 0, 80, 100, 1_000),
            comp(6, 0, 80, 50, 210),
        ];
        for c in raw {
            rec.record(c);
        }
        let extra = Nanos::from_micros(5);
        let fast = rec.summarize_all(extra);
        let slow = reference::summarize_all(rec.completions(), 0.1, extra);
        assert_matches_reference(&fast, &slow);
    }

    #[test]
    fn one_arrival_sort_amortized_over_all_queries() {
        let mut rec = ClassRecorder::new(0.1);
        for i in 0..100u64 {
            rec.record(comp(i, (i % 3) as u16, 1_000 - i * 10, 50, 2_000));
        }
        assert_eq!(rec.arrival_sorts(), 0);
        // The summary path partitions instead of sorting.
        let _ = rec.summarize_all(Nanos::from_micros(5));
        let _ = rec.summarize(Nanos::ZERO);
        assert_eq!(rec.arrival_sorts(), 0);
        // The per-query accessors sort once, then reuse the order.
        let _ = rec.overall_slowdown(99.9);
        let _ = rec.overall_latency(50.0, Nanos::ZERO);
        let _ = rec.summarize_all(Nanos::ZERO);
        assert_eq!(rec.arrival_sorts(), 1);
        // New data invalidates the order; exactly one more sort follows.
        rec.record(comp(200, 0, 5, 50, 100));
        let _ = rec.summarize_all(Nanos::ZERO);
        assert_eq!(rec.arrival_sorts(), 1);
        let _ = rec.overall_slowdown(99.9);
        assert_eq!(rec.arrival_sorts(), 2);
    }

    #[test]
    fn summarize_all_views_are_consistent() {
        let mut rec = ClassRecorder::new(0.0);
        rec.record(comp(0, 0, 0, 500, 1_000));
        rec.record(comp(1, 0, 10, 500, 1_200));
        let s = rec.summarize_all(Nanos::from_micros(10));
        assert_eq!(s.classes_e2e.len(), 1);
        assert_eq!(
            s.classes_e2e[0].p999,
            s.classes_sojourn[0].p999 + Nanos::from_micros(10)
        );
        // Slowdown never includes the extra latency.
        assert_eq!(
            s.classes_e2e[0].slowdown_p999,
            s.classes_sojourn[0].slowdown_p999
        );
        assert!((s.overall_slowdown_p999 - 1_190.0 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_all_empty_recorder() {
        let mut rec = ClassRecorder::new(0.1);
        let s = rec.summarize_all(Nanos::from_micros(5));
        assert!(s.classes_e2e.is_empty());
        assert!(s.classes_sojourn.is_empty());
        assert_eq!(s.overall_slowdown_p999, 0.0);
    }

    #[test]
    fn overall_metrics() {
        let mut rec = ClassRecorder::new(0.0);
        rec.record(comp(0, 0, 0, 100, 200)); // slowdown 2
        rec.record(comp(1, 1, 0, 100, 500)); // slowdown 5
        assert!((rec.overall_slowdown(99.9) - 5.0).abs() < 1e-12);
        assert_eq!(
            rec.overall_latency(99.9, Nanos::ZERO),
            Nanos::from_nanos(500)
        );
    }
}
