//! Tail-latency metrics.
//!
//! The paper reports the 99.9th percentile of end-to-end latency (or
//! server-side sojourn time) per job class, and slowdown (sojourn ÷ service)
//! for multi-modal workloads, discarding the first 10% of samples as warm-up
//! (§5.1). This module implements exactly that pipeline.

use serde::{Deserialize, Serialize};
use tq_core::job::Completion;
use tq_core::{ClassId, Nanos};

/// A sample collector with percentile queries (nearest-rank definition).
///
/// # Example
///
/// ```
/// use tq_sim::TailStats;
///
/// let mut s = TailStats::new();
/// for v in 1..=100u64 {
///     s.record(v);
/// }
/// assert_eq!(s.percentile(50.0), 50);
/// assert_eq!(s.percentile(99.0), 99);
/// assert_eq!(s.percentile(100.0), 100);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TailStats {
    samples: Vec<u64>,
    #[serde(skip)]
    sorted: bool,
}

impl TailStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        TailStats::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Largest sample, or 0 with no samples.
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Nearest-rank percentile: the smallest sample such that at least
    /// `p`% of samples are ≤ it. Returns 0 with no samples.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64 - 1e-9).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// Convenience: the 99.9th percentile the paper reports everywhere.
    pub fn p999(&mut self) -> u64 {
        self.percentile(99.9)
    }
}

impl FromIterator<u64> for TailStats {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        TailStats {
            samples: iter.into_iter().collect(),
            sorted: false,
        }
    }
}

impl Extend<u64> for TailStats {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.samples.extend(iter);
        self.sorted = false;
    }
}

/// Per-class summary produced by [`ClassRecorder::summarize`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// The class summarized.
    pub class: ClassId,
    /// Completions counted after warm-up discarding.
    pub count: usize,
    /// Median latency (sojourn + any fixed extra) in nanoseconds.
    pub p50: Nanos,
    /// 99th percentile latency.
    pub p99: Nanos,
    /// 99.9th percentile latency — the paper's headline metric.
    pub p999: Nanos,
    /// Mean latency.
    pub mean: Nanos,
    /// 99.9th percentile slowdown (sojourn ÷ service; the fixed extra is
    /// *not* included, matching how the paper computes server slowdown).
    pub slowdown_p999: f64,
    /// Mean slowdown.
    pub slowdown_mean: f64,
}

/// Collects [`Completion`]s and produces the paper's metrics: per-class
/// latency percentiles with warm-up discarding and optional fixed
/// network RTT added (end-to-end vs. sojourn reporting).
///
/// # Example
///
/// ```
/// use tq_core::job::Completion;
/// use tq_core::{ClassId, JobId, Nanos};
/// use tq_sim::ClassRecorder;
///
/// let mut rec = ClassRecorder::new(0.0);
/// rec.record(Completion {
///     id: JobId(0), class: ClassId(0),
///     arrival: Nanos::ZERO,
///     service: Nanos::from_nanos(500),
///     finish: Nanos::from_micros(1),
/// });
/// let all = rec.summarize(Nanos::ZERO);
/// assert_eq!(all[0].p999, Nanos::from_micros(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClassRecorder {
    completions: Vec<Completion>,
    warmup_frac: f64,
}

impl ClassRecorder {
    /// Creates a recorder that discards the earliest-arriving
    /// `warmup_frac` fraction of samples (the paper uses 0.1).
    ///
    /// # Panics
    ///
    /// Panics if `warmup_frac` is not within `[0, 1)`.
    pub fn new(warmup_frac: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&warmup_frac),
            "warm-up fraction out of range: {warmup_frac}"
        );
        ClassRecorder {
            completions: Vec::new(),
            warmup_frac,
        }
    }

    /// Records a completed job.
    pub fn record(&mut self, c: Completion) {
        self.completions.push(c);
    }

    /// Total completions recorded (before warm-up discarding).
    pub fn count(&self) -> usize {
        self.completions.len()
    }

    /// Summarizes every class present, ordered by class id. `extra` is a
    /// fixed latency added to each sojourn (e.g. the network RTT when
    /// reporting end-to-end latency; pass [`Nanos::ZERO`] for sojourn).
    pub fn summarize(&self, extra: Nanos) -> Vec<ClassSummary> {
        let kept = self.after_warmup();
        let mut classes: Vec<ClassId> = kept.iter().map(|c| c.class).collect();
        classes.sort_unstable();
        classes.dedup();
        classes
            .into_iter()
            .map(|class| {
                let mut lat = TailStats::new();
                let mut slow = Vec::new();
                for c in kept.iter().filter(|c| c.class == class) {
                    lat.record((c.sojourn() + extra).as_nanos());
                    slow.push(c.slowdown());
                }
                let slowdown_p999 = percentile_f64(&mut slow, 99.9);
                let slowdown_mean = slow.iter().sum::<f64>() / slow.len() as f64;
                ClassSummary {
                    class,
                    count: lat.count(),
                    p50: Nanos::from_nanos(lat.percentile(50.0)),
                    p99: Nanos::from_nanos(lat.percentile(99.0)),
                    p999: Nanos::from_nanos(lat.percentile(99.9)),
                    mean: Nanos::from_nanos(lat.mean().round() as u64),
                    slowdown_p999,
                    slowdown_mean,
                }
            })
            .collect()
    }

    /// The overall (class-blind) slowdown percentile, as Figure 8 reports
    /// for TPC-C.
    pub fn overall_slowdown(&self, p: f64) -> f64 {
        let mut slow: Vec<f64> = self.after_warmup().iter().map(|c| c.slowdown()).collect();
        percentile_f64(&mut slow, p)
    }

    /// The overall latency percentile across all classes.
    pub fn overall_latency(&self, p: f64, extra: Nanos) -> Nanos {
        let mut lat: TailStats = self
            .after_warmup()
            .iter()
            .map(|c| (c.sojourn() + extra).as_nanos())
            .collect();
        Nanos::from_nanos(if lat.is_empty() { 0 } else { lat.percentile(p) })
    }

    /// Completions surviving warm-up discarding, ordered by arrival.
    fn after_warmup(&self) -> Vec<Completion> {
        let mut by_arrival = self.completions.clone();
        by_arrival.sort_unstable_by_key(|c| (c.arrival, c.id));
        let skip = (by_arrival.len() as f64 * self.warmup_frac).floor() as usize;
        by_arrival.split_off(skip.min(by_arrival.len()))
    }
}

/// A log₂-bucketed histogram of nanosecond samples — the compact way to
/// eyeball a latency distribution's whole body and tail at once.
///
/// # Example
///
/// ```
/// use tq_sim::metrics::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// h.record(700);      // bucket [512, 1024)
/// h.record(900);
/// h.record(100_000);  // far tail
/// assert_eq!(h.count(), 3);
/// let rows = h.buckets();
/// assert_eq!(rows[0], (512, 1024, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>, // always 64 buckets
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: vec![0; 64],
            total: 0,
        }
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample (nanoseconds; 0 lands in the first bucket).
    pub fn record(&mut self, v: u64) {
        let bucket = 63 - v.max(1).leading_zeros() as usize;
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)`, in order.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, 1u64 << (i + 1).min(63), c))
            .collect()
    }

    /// The sample value below which at least `p`% of samples fall,
    /// resolved to its bucket's upper bound (a coarse percentile for
    /// quick looks; use [`TailStats`] for exact ones).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn approx_percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

impl Extend<u64> for LogHistogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Nearest-rank percentile of a float slice (sorts in place). Returns 0
/// for an empty slice.
fn percentile_f64(v: &mut [f64], p: f64) -> f64 {
    assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
    if v.is_empty() {
        return 0.0;
    }
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN slowdown"));
    let rank = ((p / 100.0) * v.len() as f64 - 1e-9).ceil() as usize;
    v[rank.clamp(1, v.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_core::JobId;

    fn comp(id: u64, class: u16, arrival_ns: u64, service_ns: u64, finish_ns: u64) -> Completion {
        Completion {
            id: JobId(id),
            class: ClassId(class),
            arrival: Nanos::from_nanos(arrival_ns),
            service: Nanos::from_nanos(service_ns),
            finish: Nanos::from_nanos(finish_ns),
        }
    }

    #[test]
    fn log_histogram_buckets_and_percentiles() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 1, 3, 900, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let rows = h.buckets();
        assert_eq!(rows[0], (1, 2, 3)); // 0, 1, 1 clamp into [1,2)
        assert_eq!(rows[1], (2, 4, 1));
        // 50% of 6 = 3rd sample → the [1,2) bucket, upper bound 2.
        assert_eq!(h.approx_percentile(50.0), 2);
        assert!(h.approx_percentile(100.0) >= 1_000_000);
    }

    #[test]
    fn log_histogram_empty() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.buckets().is_empty());
        assert_eq!(h.approx_percentile(99.9), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s: TailStats = (1..=1000u64).collect();
        assert_eq!(s.percentile(99.9), 999);
        assert_eq!(s.percentile(0.1), 1);
        assert_eq!(s.percentile(100.0), 1000);
    }

    #[test]
    fn percentile_single_sample() {
        let mut s = TailStats::new();
        s.record(42);
        assert_eq!(s.percentile(50.0), 42);
        assert_eq!(s.p999(), 42);
    }

    #[test]
    fn percentile_empty_is_zero() {
        let mut s = TailStats::new();
        assert_eq!(s.p999(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn recording_after_query_resorts() {
        let mut s = TailStats::new();
        s.record(10);
        assert_eq!(s.p999(), 10);
        s.record(5);
        assert_eq!(s.percentile(50.0), 5);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_zero() {
        let mut s = TailStats::new();
        s.record(1);
        let _ = s.percentile(0.0);
    }

    #[test]
    fn recorder_separates_classes() {
        let mut rec = ClassRecorder::new(0.0);
        rec.record(comp(0, 0, 0, 500, 1_000));
        rec.record(comp(1, 1, 0, 1_000, 5_000));
        rec.record(comp(2, 0, 10, 500, 600));
        let sums = rec.summarize(Nanos::ZERO);
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].class, ClassId(0));
        assert_eq!(sums[0].count, 2);
        assert_eq!(sums[1].count, 1);
        assert_eq!(sums[1].p999, Nanos::from_nanos(5_000));
    }

    #[test]
    fn warmup_discards_earliest_arrivals() {
        let mut rec = ClassRecorder::new(0.5);
        rec.record(comp(0, 0, 0, 100, 10_000)); // slow warm-up sample
        rec.record(comp(1, 0, 100, 100, 300));
        let sums = rec.summarize(Nanos::ZERO);
        assert_eq!(sums[0].count, 1);
        assert_eq!(sums[0].p999, Nanos::from_nanos(200));
    }

    #[test]
    fn extra_latency_added_to_latency_not_slowdown() {
        let mut rec = ClassRecorder::new(0.0);
        rec.record(comp(0, 0, 0, 500, 1_000));
        let sums = rec.summarize(Nanos::from_micros(10));
        assert_eq!(sums[0].p999, Nanos::from_nanos(11_000));
        assert!((sums[0].slowdown_p999 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overall_metrics() {
        let mut rec = ClassRecorder::new(0.0);
        rec.record(comp(0, 0, 0, 100, 200)); // slowdown 2
        rec.record(comp(1, 1, 0, 100, 500)); // slowdown 5
        assert!((rec.overall_slowdown(99.9) - 5.0).abs() < 1e-12);
        assert_eq!(
            rec.overall_latency(99.9, Nanos::ZERO),
            Nanos::from_nanos(500)
        );
    }
}
