//! Conservative parallel discrete-event execution (PDES).
//!
//! Splits one simulation into independently-advancing **shards** (one
//! event queue + state partition each) that interact only through
//! timestamped messages, and runs them under YAWNS-style conservative
//! synchronization: execution proceeds in bounded virtual-time windows.
//!
//! Each round the executor computes the global watermark `W` — the
//! earliest pending event across all shards — and lets every shard
//! execute its events with time `t < W + Δ` in parallel, where `Δ` is the
//! **lookahead**: a lower bound, guaranteed by the model, on the delay
//! between an event and any cross-shard message it emits. Any message
//! sent from an event in the window `[W, W + Δ)` therefore has a delivery
//! time `≥ W + Δ`, i.e. strictly after the window, so delivering the
//! round's messages at the barrier can never violate causality and no
//! rollback machinery is needed. The contract is enforced at send time:
//! [`Outbox::send`] panics on a delivery time inside the current window.
//!
//! ## Determinism
//!
//! The schedule is bit-reproducible **independent of the thread count**:
//!
//! * within a window each shard executes only its own events, in its own
//!   queue's deterministic `(time, seq)` order, with no shared state;
//! * at the barrier, messages are delivered serially in (sender index,
//!   send order) — so ties between simultaneous messages from different
//!   senders always break the same way;
//! * the window sequence itself (`W` per round) is a pure function of
//!   shard states.
//!
//! Threads only change *which OS thread* runs a shard's window, never the
//! order of anything observable.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use tq_core::Nanos;

/// A partition of a simulation advanced by [`run_conservative`].
///
/// Implementations own their event queue and state; all cross-shard
/// interaction goes through the [`Outbox`] (sends) and [`Shard::deliver`]
/// (receives). `Send` is required so windows can run on pool threads.
pub trait Shard: Send {
    /// The inter-shard message type.
    type Msg: Send;

    /// Timestamp of this shard's earliest pending event, or `None` when
    /// it has quiesced. Drives the global watermark.
    fn next_time(&self) -> Option<Nanos>;

    /// Executes every pending event with time strictly less than
    /// `bound`, sending any cross-shard messages through `out`.
    fn execute_until(&mut self, bound: Nanos, out: &mut Outbox<Self::Msg>);

    /// Accepts a message sent by shard `from` for delivery at virtual
    /// time `at` (guaranteed `≥` every event this shard has executed).
    fn deliver(&mut self, from: usize, at: Nanos, msg: Self::Msg);

    /// Accepts a batch of messages from one sender, in send order.
    ///
    /// The executor groups each sender's round of messages per
    /// destination and hands them over in one call so receivers can
    /// bulk-load their inboxes (see `EventQueue::extend_sorted`); the
    /// default just loops over [`Shard::deliver`].
    fn deliver_batch(&mut self, from: usize, msgs: &mut Vec<(Nanos, Self::Msg)>) {
        for (at, msg) in msgs.drain(..) {
            self.deliver(from, at, msg);
        }
    }
}

/// Collects one shard's outgoing messages during a window.
#[derive(Debug)]
pub struct Outbox<M> {
    /// `(dest, deliver_at, payload)` in send order.
    msgs: Vec<(usize, Nanos, M)>,
    /// Current window horizon: every send must deliver at or after it.
    floor: Nanos,
}

impl<M> Outbox<M> {
    fn new() -> Self {
        Outbox {
            msgs: Vec::new(),
            floor: Nanos::ZERO,
        }
    }

    /// Sends `msg` to shard `dest` for delivery at virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is inside the current window — the model violated
    /// its lookahead contract, which would corrupt causality.
    pub fn send(&mut self, dest: usize, at: Nanos, msg: M) {
        assert!(
            at >= self.floor,
            "lookahead contract violated: message for t={at} inside window ending {}",
            self.floor
        );
        self.msgs.push((dest, at, msg));
    }
}

/// What a [`run_conservative`] execution reports about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdesStats {
    /// Synchronization rounds (windows) executed.
    pub windows: u64,
    /// Cross-shard messages delivered.
    pub messages: u64,
    /// OS threads actually used (after clamping to the shard count).
    pub threads: usize,
}

/// Runs `shards` to quiescence under conservative-lookahead windows.
///
/// `lookahead` is the minimum cross-shard message latency the model
/// guarantees; `threads` is the desired pool size (clamped to
/// `[1, shards.len()]`; the calling thread participates). The result is
/// identical for every `threads` value.
///
/// A single shard is run inline with an unbounded window (it can only
/// message itself, and self-messages are delivered between rounds).
///
/// # Panics
///
/// Panics if `shards` is empty, or if `lookahead` is zero with more than
/// one shard (zero lookahead serializes everything: the window would
/// never contain an event).
pub fn run_conservative<S: Shard>(
    shards: &mut [S],
    lookahead: Nanos,
    threads: usize,
) -> PdesStats {
    let n = shards.len();
    assert!(n > 0, "no shards to run");
    assert!(
        n == 1 || lookahead > Nanos::ZERO,
        "conservative execution requires non-zero lookahead"
    );
    let threads = threads.clamp(1, n);
    if threads == 1 {
        run_serial(shards, lookahead)
    } else {
        run_parallel(shards, lookahead, threads)
    }
}

/// The window loop on the calling thread only. Semantically identical to
/// the pooled path (same windows, same delivery order).
fn run_serial<S: Shard>(shards: &mut [S], lookahead: Nanos) -> PdesStats {
    let n = shards.len();
    let mut outboxes: Vec<Outbox<S::Msg>> = (0..n).map(|_| Outbox::new()).collect();
    let mut scratch: Vec<Vec<(Nanos, S::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut stats = PdesStats {
        windows: 0,
        messages: 0,
        threads: 1,
    };
    while let Some(watermark) = shards.iter().filter_map(Shard::next_time).min() {
        let (bound, floor) = if n == 1 {
            (Nanos::MAX, watermark)
        } else {
            let b = watermark + lookahead;
            (b, b)
        };
        for (shard, outbox) in shards.iter_mut().zip(outboxes.iter_mut()) {
            outbox.floor = floor;
            shard.execute_until(bound, outbox);
        }
        stats.windows += 1;
        stats.messages += deliver_round(shards, &mut outboxes, &mut scratch);
    }
    stats
}

/// Delivers every outbox serially: senders in index order, each sender's
/// messages grouped per destination in send order. Returns the count.
fn deliver_round<S: Shard>(
    shards: &mut [S],
    outboxes: &mut [Outbox<S::Msg>],
    scratch: &mut [Vec<(Nanos, S::Msg)>],
) -> u64 {
    let mut delivered = 0u64;
    for (sender, outbox) in outboxes.iter_mut().enumerate() {
        if outbox.msgs.is_empty() {
            continue;
        }
        delivered += outbox.msgs.len() as u64;
        for (dest, at, msg) in outbox.msgs.drain(..) {
            scratch[dest].push((at, msg));
        }
        for (dest, batch) in scratch.iter_mut().enumerate() {
            if !batch.is_empty() {
                shards[dest].deliver_batch(sender, batch);
                debug_assert!(batch.is_empty(), "deliver_batch must drain its input");
            }
        }
    }
    delivered
}

/// One shard plus its outbox, claimed whole by whichever pool thread
/// gets there first each window.
struct Slot<'a, S: Shard> {
    shard: &'a mut S,
    outbox: Outbox<S::Msg>,
}

/// The pooled window loop: `threads - 1` helpers plus the calling thread,
/// which doubles as the coordinator (watermark computation + barrier-time
/// message delivery).
fn run_parallel<S: Shard>(shards: &mut [S], lookahead: Nanos, threads: usize) -> PdesStats {
    let n = shards.len();
    let slots: Vec<Mutex<Slot<'_, S>>> = shards
        .iter_mut()
        .map(|shard| {
            Mutex::new(Slot {
                shard,
                outbox: Outbox::new(),
            })
        })
        .collect();
    // Window horizon in raw nanos, the claim cursor for shard work, and
    // the shutdown flag — all published before the start barrier.
    let bound = AtomicU64::new(0);
    let claim = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let barrier = Barrier::new(threads);

    let execute_claimed = |horizon: Nanos| {
        loop {
            let i = claim.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let mut slot = slots[i].lock().expect("shard slot poisoned");
            slot.outbox.floor = horizon;
            let Slot { shard, outbox } = &mut *slot;
            shard.execute_until(horizon, outbox);
        }
    };

    let mut stats = PdesStats {
        windows: 0,
        messages: 0,
        threads,
    };
    std::thread::scope(|scope| {
        for _ in 1..threads {
            scope.spawn(|| loop {
                barrier.wait();
                if done.load(Ordering::Acquire) {
                    break;
                }
                execute_claimed(Nanos::from_nanos(bound.load(Ordering::Acquire)));
                barrier.wait();
            });
        }
        let mut scratch: Vec<Vec<(Nanos, S::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        loop {
            // Between barriers every slot is at rest; the locks below are
            // uncontended and taken only to satisfy the borrow checker.
            let watermark = slots
                .iter()
                .filter_map(|s| s.lock().expect("shard slot poisoned").shard.next_time())
                .min();
            let Some(watermark) = watermark else {
                done.store(true, Ordering::Release);
                barrier.wait();
                break;
            };
            let horizon = watermark + lookahead;
            bound.store(horizon.as_nanos(), Ordering::Release);
            claim.store(0, Ordering::Release);
            barrier.wait();
            execute_claimed(horizon);
            barrier.wait();
            stats.windows += 1;
            stats.messages += deliver_round_locked(&slots, &mut scratch);
        }
    });
    stats
}

/// [`deliver_round`] over mutex-held slots (all at rest between windows).
fn deliver_round_locked<S: Shard>(
    slots: &[Mutex<Slot<'_, S>>],
    scratch: &mut [Vec<(Nanos, S::Msg)>],
) -> u64 {
    let mut delivered = 0u64;
    for sender in 0..slots.len() {
        let mut msgs = {
            let mut slot = slots[sender].lock().expect("shard slot poisoned");
            std::mem::take(&mut slot.outbox.msgs)
        };
        if msgs.is_empty() {
            continue;
        }
        delivered += msgs.len() as u64;
        for (dest, at, msg) in msgs.drain(..) {
            scratch[dest].push((at, msg));
        }
        // Hand the (now empty) buffer back so its capacity is reused.
        slots[sender].lock().expect("shard slot poisoned").outbox.msgs = msgs;
        for (dest, batch) in scratch.iter_mut().enumerate() {
            if !batch.is_empty() {
                let mut slot = slots[dest].lock().expect("shard slot poisoned");
                slot.shard.deliver_batch(sender, batch);
                debug_assert!(batch.is_empty(), "deliver_batch must drain its input");
            }
        }
    }
    delivered
}

/// A shard whose inbox is an [`EventQueue`] merged against local events —
/// the common receiving half of a sharded model. Kept here as a tested
/// example and used by the unit tests below; `tq-queueing`'s rack tier
/// implements the same pattern over its serving-system sims.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventQueue;

    /// Token-passing test shard: each event carries a hop count; a shard
    /// receiving `h > 0` forwards `h - 1` to the next shard after
    /// `delay`. Deterministic and fully message-driven.
    struct TokenShard {
        index: usize,
        n: usize,
        delay: Nanos,
        queue: EventQueue<u32>,
        executed: Vec<(Nanos, u32)>,
    }

    impl TokenShard {
        fn new(index: usize, n: usize, delay: Nanos) -> Self {
            TokenShard {
                index,
                n,
                delay,
                queue: EventQueue::new(),
                executed: Vec::new(),
            }
        }
    }

    impl Shard for TokenShard {
        type Msg = u32;

        fn next_time(&self) -> Option<Nanos> {
            self.queue.peek_time()
        }

        fn execute_until(&mut self, bound: Nanos, out: &mut Outbox<u32>) {
            while self.queue.peek_time().is_some_and(|t| t < bound) {
                let (now, hops) = self.queue.pop().expect("peeked");
                self.executed.push((now, hops));
                if hops > 0 {
                    out.send((self.index + 1) % self.n, now + self.delay, hops - 1);
                }
            }
        }

        fn deliver(&mut self, _from: usize, at: Nanos, msg: u32) {
            self.queue.push(at, msg);
        }
    }

    fn token_ring(n: usize, threads: usize) -> (Vec<Vec<(Nanos, u32)>>, PdesStats) {
        let delay = Nanos::from_nanos(50);
        let mut shards: Vec<TokenShard> = (0..n).map(|i| TokenShard::new(i, n, delay)).collect();
        // Several tokens with staggered start times and hop budgets,
        // including simultaneous starts on different shards.
        for (i, shard) in shards.iter_mut().enumerate() {
            shard.queue.push(Nanos::from_nanos(10 + 7 * i as u64), 40);
            shard.queue.push(Nanos::from_nanos(10), 13);
        }
        let stats = run_conservative(&mut shards, delay, threads);
        (shards.into_iter().map(|s| s.executed).collect(), stats)
    }

    #[test]
    fn ring_terminates_and_counts() {
        let (executed, stats) = token_ring(4, 1);
        let total: usize = executed.iter().map(Vec::len).sum();
        // Each token of hop budget h produces h + 1 executions.
        assert_eq!(total, 4 * (41 + 14));
        assert_eq!(stats.messages, 4 * (40 + 13));
        assert!(stats.windows > 1, "multi-hop run must take several windows");
    }

    #[test]
    fn identical_across_thread_counts() {
        let (serial, serial_stats) = token_ring(5, 1);
        for threads in [2, 3, 5] {
            let (pooled, pooled_stats) = token_ring(5, threads);
            assert_eq!(serial, pooled, "diverged at {threads} threads");
            assert_eq!(serial_stats.windows, pooled_stats.windows);
            assert_eq!(serial_stats.messages, pooled_stats.messages);
        }
    }

    #[test]
    fn single_shard_runs_unbounded() {
        // One shard messaging itself: window bound is MAX, self-messages
        // are delivered between rounds, and the run still terminates.
        let mut shards = vec![TokenShard::new(0, 1, Nanos::from_nanos(5))];
        shards[0].queue.push(Nanos::from_nanos(1), 3);
        let stats = run_conservative(&mut shards, Nanos::ZERO, 4);
        assert_eq!(shards[0].executed.len(), 4);
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.threads, 1, "single shard clamps the pool");
    }

    #[test]
    #[should_panic(expected = "lookahead contract violated")]
    fn undershooting_lookahead_panics() {
        /// Claims a 100ns lookahead but sends at +10ns.
        struct Liar(EventQueue<u32>);
        impl Shard for Liar {
            type Msg = u32;
            fn next_time(&self) -> Option<Nanos> {
                self.0.peek_time()
            }
            fn execute_until(&mut self, bound: Nanos, out: &mut Outbox<u32>) {
                while self.0.peek_time().is_some_and(|t| t < bound) {
                    let (now, _) = self.0.pop().expect("peeked");
                    out.send(1, now + Nanos::from_nanos(10), 0);
                }
            }
            fn deliver(&mut self, _from: usize, at: Nanos, msg: u32) {
                self.0.push(at, msg);
            }
        }
        let mut shards = vec![Liar(EventQueue::new()), Liar(EventQueue::new())];
        shards[0].0.push(Nanos::from_nanos(1), 0);
        run_conservative(&mut shards, Nanos::from_nanos(100), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero lookahead")]
    fn zero_lookahead_rejected_for_multiple_shards() {
        let mut shards = vec![
            TokenShard::new(0, 2, Nanos::ZERO),
            TokenShard::new(1, 2, Nanos::ZERO),
        ];
        run_conservative(&mut shards, Nanos::ZERO, 1);
    }
}
