//! Instrumentation demo: watch the compiler pass place probes.
//!
//! Takes one of the Table 3 benchmarks (default `cholesky`), runs all
//! three instrumentation passes over it, and reports what each placed
//! and what it cost at run time: static probe counts, probing overhead,
//! yield-timing accuracy, and the longest stretch of instructions that
//! ever ran without a clock read (the safety property TQ's placement
//! bounds).
//!
//! Run with: `cargo run --release --example instrument_demo -- [benchmark]`

use tq_core::Nanos;
use tq_instrument::exec::{execute, ExecConfig};
use tq_instrument::passes;
use tq_instrument::programs;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cholesky".into());
    let Some(program) = programs::by_name(&name) else {
        eprintln!("unknown benchmark {name:?}; known:");
        for n in programs::ALL_NAMES {
            eprintln!("  {n}");
        }
        std::process::exit(2);
    };

    let cfg = ExecConfig::default_for_quantum(Nanos::from_micros(2));
    let base = execute(&program, &cfg, 42);
    println!(
        "benchmark {name}: {} instructions, {} cycles uninstrumented (IPC {:.2})",
        base.insns,
        base.total_cycles,
        base.insns as f64 / base.total_cycles as f64
    );
    println!();
    println!(
        "{:<12}{:>8}{:>12}{:>12}{:>12}{:>14}",
        "pass", "probes", "overhead%", "yields", "MAE(ns)", "max gap(insn)"
    );

    let variants: [(&str, tq_instrument::Program); 3] = [
        ("CI", passes::ci::instrument(&program)),
        ("CI-Cycles", passes::ci_cycles::instrument(&program)),
        (
            "TQ",
            passes::tq::instrument(&program, passes::tq::TqPassConfig::default()),
        ),
    ];
    for (label, instrumented) in &variants {
        let stats = execute(instrumented, &cfg, 42);
        println!(
            "{:<12}{:>8}{:>12.2}{:>12}{:>12.0}{:>14}",
            label,
            instrumented.probe_count(),
            stats.overhead_pct(&base),
            stats.yields.len(),
            stats.yield_mae_nanos(&cfg).unwrap_or(f64::NAN),
            stats.max_clock_gap_insns
        );
    }
    println!();
    println!("TQ reads the physical clock at a handful of bounded-distance probes;");
    println!("CI must probe every basic block to keep its instruction counter exact,");
    println!("and mistranslates cycles into instructions whenever IPC != 1.");
}
