// Tiny Quanta examples helper library (intentionally minimal).
