//! Quickstart: one pipeline from a workload spec to a per-class tail
//! summary, on both the *model* and the *real runtime*.
//!
//! The same `RunSpec` — Extreme Bimodal (Table 1: 99.5% × 1 µs, 0.5% ×
//! 100 µs), open-loop Poisson arrivals, fixed seed — is run twice
//! through the engine harness:
//!
//! - `SimEngine`: the discrete-event model of the TQ system in virtual
//!   time (deterministic, host-independent);
//! - `RtEngine`: the real `TinyQuanta` server — dispatcher thread,
//!   worker threads, forced-multitasking spin jobs, TSC timestamps —
//!   with arrivals paced at wall-clock time.
//!
//! Both drain into the identical metrics path, so the printed rows are
//! directly comparable. On a quiet many-core host the rt rows approach
//! the model; on a loaded or small host they blow up — the model rows
//! are what the paper's numbers look like, the rt rows are what *your
//! machine* does (see EXPERIMENTS.md, "Live-runtime runs").
//!
//! Run with: `cargo run --release --example quickstart`

use tq_core::Nanos;
use tq_harness::{run_to_record, RtEngine, RunRecord, RunSpec, SimEngine};
use tq_runtime::ServerConfig;
use tq_workloads::{table1, ArrivalProcess};

fn print_record(r: &RunRecord) {
    println!(
        "[{}] {} — {} workers, offered {:.2} Mrps, achieved {:.2} Mrps, {} jobs",
        r.engine,
        r.system,
        r.workers,
        r.rate_rps / 1e6,
        r.achieved_rps / 1e6,
        r.completed,
    );
    for c in &r.classes {
        println!(
            "      class {}: n={:<6} p50={:<10} p999={:<10} slowdown_p999={:.1}",
            c.class.0,
            c.count,
            c.p50.to_string(),
            c.p999.to_string(),
            c.slowdown_p999,
        );
    }
    let steals: u64 = r.counters.workers.iter().map(|w| w.steals).sum();
    let quanta: u64 = r.counters.workers.iter().map(|w| w.quanta).sum();
    println!("      {} quanta serviced, {} steals\n", quanta, steals);
}

fn main() {
    let workers = 2;
    let quantum = Nanos::from_micros(5);
    let workload = table1::extreme_bimodal();
    let spec = RunSpec {
        // 20% of the 2-worker capacity: low enough that even an
        // oversubscribed laptop/CI host keeps up with the pacer.
        rate_rps: workload.rate_for_load(workers, 0.2),
        workload,
        process: ArrivalProcess::Poisson,
        horizon: Nanos::from_millis(50),
        seed: 42,
    };

    let mut sim = SimEngine::new(tq_queueing::presets::tq(workers, quantum));
    let model = run_to_record(&mut sim, &spec);
    print_record(&model);

    let mut rt = RtEngine::new(ServerConfig {
        workers,
        quantum,
        ..ServerConfig::default()
    });
    let live = run_to_record(&mut rt, &spec);
    print_record(&live);

    assert!(model.conserved() && live.conserved());
    println!(
        "same spec, same metrics path: model predicted, runtime measured \
         ({} vs {} completions).",
        model.completed, live.completed
    );
}
