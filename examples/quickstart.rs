//! Quickstart: serve a microsecond-scale bimodal workload with the Tiny
//! Quanta runtime.
//!
//! Starts a TQ server (dispatcher + workers + forced-multitasking jobs),
//! submits an Extreme-Bimodal-style mix of 5 µs and 500 µs CPU-bound
//! requests, and prints per-class tail latency. Even with the 500 µs
//! stragglers in the mix, the short jobs' tail stays a few quanta long —
//! that is preemptive processor sharing at work.
//!
//! Run with: `cargo run --release --example quickstart`

use tq_core::Nanos;
use tq_runtime::{ServerConfig, SpinJob, TinyQuanta, TscClock};
use tq_sim::TailStats;

fn main() {
    let clock = TscClock::calibrated();
    println!("calibrated clock: {}", clock.freq());

    let server = TinyQuanta::start(
        ServerConfig {
            workers: 2,
            quantum: Nanos::from_micros(5),
            ..ServerConfig::default()
        },
        {
            let clock = clock.clone();
            move |req| Box::new(SpinJob::with_clock(req, &clock))
        },
    );

    // 990 short jobs (5µs), 10 long (500µs), interleaved.
    let mut submitted = 0;
    for i in 0..1_000u64 {
        if i % 100 == 99 {
            server.submit(1, Nanos::from_micros(500));
        } else {
            server.submit(0, Nanos::from_micros(5));
        }
        submitted += 1;
        // Pace submissions slightly so the oversubscribed workers aren't
        // instantly saturated on a small host.
        if i % 50 == 0 {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    let completions = server.shutdown();
    assert_eq!(completions.len(), submitted);

    for (class, name) in [(0u16, "short (5us)"), (1u16, "long (500us)")] {
        let mut lat: TailStats = completions
            .iter()
            .filter(|c| c.class.0 == class)
            .map(|c| c.sojourn().as_nanos())
            .collect();
        if lat.is_empty() {
            continue;
        }
        let quanta: u64 = completions
            .iter()
            .filter(|c| c.class.0 == class)
            .map(|c| c.quanta)
            .sum();
        println!(
            "{name:<14} n={:<5} p50={:<12} p99={:<12} max={:<12} quanta/job={:.1}",
            lat.count(),
            Nanos::from_nanos(lat.percentile(50.0)).to_string(),
            Nanos::from_nanos(lat.percentile(99.0)).to_string(),
            Nanos::from_nanos(lat.max()).to_string(),
            quanta as f64 / lat.count() as f64,
        );
    }
    println!("done: {submitted} jobs served");
}
