//! The paper's full serving loop over real (loopback) UDP.
//!
//! Starts a Tiny Quanta server behind the UDP front-end, then plays the
//! role of the paper's open-loop client: Poisson arrivals of a bimodal
//! request mix sent as datagrams, end-to-end latency measured from the
//! responses — network round trip included, exactly the §5.1 methodology
//! (scaled to loopback and a handful of oversubscribed worker threads).
//!
//! Run with: `cargo run --release --example udp_server`

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tq_core::Nanos;
use tq_runtime::net::{decode_response, encode_request, serve_udp};
use tq_runtime::{ServerConfig, SpinJob, TinyQuanta, TscClock};
use tq_sim::{SimRng, TailStats};

fn main() {
    // --- server side -----------------------------------------------------
    let clock = TscClock::calibrated();
    let server = TinyQuanta::start(
        ServerConfig {
            workers: 2,
            quantum: Nanos::from_micros(5),
            ..ServerConfig::default()
        },
        {
            let clock = clock.clone();
            move |req| Box::new(SpinJob::with_clock(req, &clock))
        },
    );
    let srv_sock = UdpSocket::bind("127.0.0.1:0").expect("bind server socket");
    let srv_addr = srv_sock.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || serve_udp(server, srv_sock, stop))
    };
    println!("serving on {srv_addr}");

    // --- open-loop client --------------------------------------------------
    let client = UdpSocket::bind("127.0.0.1:0").expect("bind client socket");
    client
        .set_read_timeout(Some(Duration::from_millis(1)))
        .unwrap();
    let mut rng = SimRng::new(7);
    let total: u64 = 1_500;
    let mean_gap_us = 300.0; // ~3.3 krps: gentle for 2 oversubscribed workers
    let mut sent_at = vec![Instant::now(); total as usize];
    let mut lat_by_class: [TailStats; 2] = [TailStats::new(), TailStats::new()];
    let mut received = 0u64;
    let mut buf = [0u8; 64];

    let mut recv_pending = |lat_by_class: &mut [TailStats; 2],
                            received: &mut u64,
                            sent_at: &[Instant]| {
        while let Ok((n, _)) = client.recv_from(&mut buf) {
            if let Some((tag, _sojourn, _quanta)) = decode_response(&buf[..n]) {
                let e2e = sent_at[tag as usize].elapsed();
                let class = if tag % 100 == 99 { 1 } else { 0 };
                lat_by_class[class].record(e2e.as_nanos() as u64);
                *received += 1;
            }
        }
    };

    for tag in 0..total {
        // Poisson arrivals.
        let gap = rng.exp_nanos(mean_gap_us * 1_000.0);
        std::thread::sleep(Duration::from_nanos(gap.as_nanos()));
        let (class, service_us) = if tag % 100 == 99 { (1u16, 500) } else { (0u16, 5) };
        sent_at[tag as usize] = Instant::now();
        let req = encode_request(class, Nanos::from_micros(service_us), tag);
        client.send_to(&req, srv_addr).unwrap();
        recv_pending(&mut lat_by_class, &mut received, &sent_at);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while received < total && Instant::now() < deadline {
        recv_pending(&mut lat_by_class, &mut received, &sent_at);
    }
    stop.store(true, Ordering::Release);
    let stats = server_thread.join().unwrap().expect("server ok");

    // --- report -----------------------------------------------------------
    println!(
        "server: received {} / responded {} / malformed {} / shed {}",
        stats.received, stats.responded, stats.malformed, stats.shed
    );
    println!(
        "transport: {:.1} frames per recv syscall, {:.1} per send",
        stats.transport.frames_per_recv_call(),
        stats.transport.frames_per_send_call()
    );
    for (class, name) in [(0usize, "short (5us)"), (1usize, "long (500us)")] {
        let s = &mut lat_by_class[class];
        if s.is_empty() {
            continue;
        }
        println!(
            "{name:<14} n={:<5} p50={:<12} p99={:<12} (end-to-end over loopback UDP)",
            s.count(),
            Nanos::from_nanos(s.percentile(50.0)).to_string(),
            Nanos::from_nanos(s.percentile(99.0)).to_string(),
        );
    }
    assert_eq!(received, total, "every request must be answered");
    println!("done: {received} responses matched");
    println!(
        "note: on an oversubscribed host (client + dispatcher + workers sharing\n\
         few cores) absolute latencies are dominated by OS thread scheduling;\n\
         the paper's microsecond tails require dedicated physical cores."
    );
}
