//! A RocksDB-style key-value server on the Tiny Quanta runtime.
//!
//! This is the paper's headline application (§5.1): a shared in-memory
//! ordered store serving microsecond GETs mixed with rare, very long
//! SCANs. The interesting part is [`tq_runtime::kv::KvJob`] — a real job
//! written against the forced-multitasking API: the SCAN processes
//! entries in small batches and polls `QuantumCtx::probe` between
//! batches, saving its cursor when told to yield, so GETs queued behind
//! it never wait more than ~a quantum. (The job lives in the runtime
//! crate so this example, `tq-loadgen`, and the socket tests all serve
//! the identical workload.)
//!
//! Run with: `cargo run --release --example kv_server`

use tq_core::Nanos;
use tq_runtime::kv::{kv_factory, kv_store};
use tq_runtime::{ServerConfig, TinyQuanta};
use tq_sim::TailStats;

fn main() {
    let n_keys = 200_000u64;
    let store = kv_store(42, n_keys, 100);
    println!("store: {} entries of 100B", store.len());

    let server = TinyQuanta::start(
        ServerConfig {
            workers: 2,
            quantum: Nanos::from_micros(5),
            ..ServerConfig::default()
        },
        // class 0 = GET (key derived from the request id),
        // class 1 = SCAN of 20k entries.
        kv_factory(store, n_keys, 20_000),
    );

    // 0.5% SCAN mix, like the paper's low-SCAN RocksDB workload.
    let total = 2_000u64;
    for i in 0..total {
        let class = if i % 200 == 199 { 1 } else { 0 };
        server.submit(class, Nanos::ZERO);
        if i % 100 == 0 {
            std::thread::sleep(std::time::Duration::from_micros(300));
        }
    }
    let completions = server.shutdown();
    assert_eq!(completions.len() as u64, total);

    for (class, name) in [(0u16, "GET"), (1u16, "SCAN")] {
        let mut lat: TailStats = completions
            .iter()
            .filter(|c| c.class.0 == class)
            .map(|c| c.sojourn().as_nanos())
            .collect();
        let max_quanta = completions
            .iter()
            .filter(|c| c.class.0 == class)
            .map(|c| c.quanta)
            .max()
            .unwrap_or(0);
        println!(
            "{name:<5} n={:<5} p50={:<12} p99={:<12} max quanta/job={}",
            lat.count(),
            Nanos::from_nanos(lat.percentile(50.0)).to_string(),
            Nanos::from_nanos(lat.percentile(99.0)).to_string(),
            max_quanta,
        );
    }
    println!("SCANs were preempted mid-flight whenever a quantum expired;");
    println!("GETs never waited behind a whole SCAN — blind scheduling with tiny quanta.");
}
