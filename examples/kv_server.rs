//! A RocksDB-style key-value server on the Tiny Quanta runtime.
//!
//! This is the paper's headline application (§5.1): a shared in-memory
//! ordered store serving microsecond GETs mixed with rare, very long
//! SCANs. The interesting part is `KvJob` below — a real job written
//! against the forced-multitasking API: the SCAN processes entries in
//! small batches and polls [`QuantumCtx::probe`] between batches, saving
//! its cursor when told to yield, so GETs queued behind it never wait
//! more than ~a quantum.
//!
//! Run with: `cargo run --release --example kv_server`

use std::sync::Arc;
use tq_core::Nanos;
use tq_kv::KvStore;
use tq_runtime::{Job, JobStatus, QuantumCtx, ServerConfig, TinyQuanta};
use tq_sim::TailStats;

/// A GET or SCAN against the shared store, resumable at quantum
/// boundaries.
enum KvJob {
    Get {
        store: Arc<KvStore>,
        key: Vec<u8>,
    },
    Scan {
        store: Arc<KvStore>,
        /// Continuation cursor: next key to read (exclusive resume).
        cursor: Vec<u8>,
        remaining: usize,
        /// Bytes checksum, so the scan work is not optimized away.
        checksum: u64,
    },
}

impl Job for KvJob {
    fn run(&mut self, ctx: &mut QuantumCtx) -> JobStatus {
        match self {
            KvJob::Get { store, key } => {
                // A GET is far shorter than any quantum: run to completion
                // (the compiler pass would place its probes so sparsely
                // that none fires).
                let v = store.get(key);
                std::hint::black_box(v.map(|v| v.len()));
                JobStatus::Done
            }
            KvJob::Scan {
                store,
                cursor,
                remaining,
                checksum,
            } => {
                // Probe between 32-entry batches: the explicit equivalent
                // of TQ's instrumented loop gate.
                const BATCH: usize = 32;
                while *remaining > 0 {
                    let batch = store.scan(cursor, BATCH.min(*remaining));
                    if batch.is_empty() {
                        return JobStatus::Done;
                    }
                    for (k, v) in &batch {
                        *checksum = checksum
                            .wrapping_mul(31)
                            .wrapping_add(v.len() as u64 + k.len() as u64);
                    }
                    *remaining -= batch.len();
                    // Advance the cursor past the last key served.
                    let mut next = batch.last().expect("non-empty").0.to_vec();
                    next.push(0);
                    *cursor = next;
                    if *remaining > 0 && ctx.probe() {
                        return JobStatus::Yielded;
                    }
                }
                std::hint::black_box(*checksum);
                JobStatus::Done
            }
        }
    }
}

fn main() {
    let mut store = KvStore::new(42);
    let n_keys = 200_000u64;
    store.populate(n_keys, 100);
    let store = Arc::new(store);
    println!("store: {} entries of 100B", store.len());

    let server = TinyQuanta::start(
        ServerConfig {
            workers: 2,
            quantum: Nanos::from_micros(5),
            ..ServerConfig::default()
        },
        {
            let store = Arc::clone(&store);
            move |req| -> Box<dyn Job> {
                // class 0 = GET (key derived from the request id),
                // class 1 = SCAN of 20k entries.
                if req.class.0 == 0 {
                    Box::new(KvJob::Get {
                        store: Arc::clone(&store),
                        key: KvStore::nth_key((req.id.0 * 7919) % 200_000),
                    })
                } else {
                    Box::new(KvJob::Scan {
                        store: Arc::clone(&store),
                        cursor: KvStore::nth_key((req.id.0 * 104_729) % 100_000),
                        remaining: 20_000,
                        checksum: 0,
                    })
                }
            }
        },
    );

    // 0.5% SCAN mix, like the paper's low-SCAN RocksDB workload.
    let total = 2_000u64;
    for i in 0..total {
        let class = if i % 200 == 199 { 1 } else { 0 };
        server.submit(class, Nanos::ZERO);
        if i % 100 == 0 {
            std::thread::sleep(std::time::Duration::from_micros(300));
        }
    }
    let completions = server.shutdown();
    assert_eq!(completions.len() as u64, total);

    for (class, name) in [(0u16, "GET"), (1u16, "SCAN")] {
        let mut lat: TailStats = completions
            .iter()
            .filter(|c| c.class.0 == class)
            .map(|c| c.sojourn().as_nanos())
            .collect();
        let max_quanta = completions
            .iter()
            .filter(|c| c.class.0 == class)
            .map(|c| c.quanta)
            .max()
            .unwrap_or(0);
        println!(
            "{name:<5} n={:<5} p50={:<12} p99={:<12} max quanta/job={}",
            lat.count(),
            Nanos::from_nanos(lat.percentile(50.0)).to_string(),
            Nanos::from_nanos(lat.percentile(99.0)).to_string(),
            max_quanta,
        );
    }
    println!("SCANs were preempted mid-flight whenever a quantum expired;");
    println!("GETs never waited behind a whole SCAN — blind scheduling with tiny quanta.");
}
