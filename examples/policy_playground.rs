//! Policy playground: simulate any paper workload under any system.
//!
//! A small CLI over the serving-system models:
//!
//! ```text
//! cargo run --release --example policy_playground -- \
//!     [workload] [system] [load] [millis]
//!
//! workload: extreme | high | tpcc | exp | rocksdb-low | rocksdb-high
//! system:   tq | shinjuku | caladan | caladan-dp | tq-fcfs | tq-rand
//! load:     offered utilization in (0, 1.2], default 0.7
//! millis:   simulated milliseconds of arrivals, default 100
//! ```
//!
//! Prints per-class p50/p99/p99.9 end-to-end latency and the overall
//! 99.9% slowdown — a one-command way to explore where each policy
//! breaks.

use tq_core::Nanos;
use tq_queueing::{presets, run::run_once, SystemConfig};
use tq_workloads::{table1, Workload};

fn workload(name: &str) -> Option<Workload> {
    Some(match name {
        "extreme" => table1::extreme_bimodal(),
        "high" => table1::high_bimodal(),
        "tpcc" => table1::tpcc(),
        "exp" => table1::exp1(),
        "rocksdb-low" => table1::rocksdb_low_scan(),
        "rocksdb-high" => table1::rocksdb_high_scan(),
        _ => return None,
    })
}

fn system(name: &str) -> Option<SystemConfig> {
    let q = Nanos::from_micros(2);
    Some(match name {
        "tq" => presets::tq(16, q),
        "shinjuku" => presets::shinjuku(16, Nanos::from_micros(5)),
        "caladan" => presets::caladan_iokernel(16),
        "caladan-dp" => presets::caladan_directpath(16),
        "tq-fcfs" => presets::tq_fcfs(16),
        "tq-rand" => presets::tq_rand(16, q),
        "tq-p2" => presets::tq_power_two(16, q),
        "tq-ic" => presets::tq_ic(16, q),
        "tq-slow-yield" => presets::tq_slow_yield(16, q),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wl_name = args.first().map(String::as_str).unwrap_or("extreme");
    let sys_name = args.get(1).map(String::as_str).unwrap_or("tq");
    let load: f64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.7);
    let millis: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100);

    let Some(wl) = workload(wl_name) else {
        eprintln!("unknown workload {wl_name:?} (try: extreme high tpcc exp rocksdb-low rocksdb-high)");
        std::process::exit(2);
    };
    let Some(cfg) = system(sys_name) else {
        eprintln!(
            "unknown system {sys_name:?} (try: tq shinjuku caladan caladan-dp tq-fcfs tq-rand tq-p2 tq-ic tq-slow-yield)"
        );
        std::process::exit(2);
    };

    let rate = wl.rate_for_load(cfg.n_workers, load);
    println!(
        "{} serving {} at {:.2} Mrps (load {:.0}%), {}ms of arrivals",
        cfg.name,
        wl.name(),
        rate / 1e6,
        load * 100.0,
        millis
    );
    let result = run_once(&cfg, &wl, rate, Nanos::from_millis(millis), 42);
    println!(
        "{:<14}{:>10}{:>12}{:>12}{:>12}",
        "class", "count", "p50(us)", "p99(us)", "p99.9(us)"
    );
    for c in &result.classes {
        println!(
            "{:<14}{:>10}{:>12.1}{:>12.1}{:>12.1}",
            wl.class(c.class).name,
            c.count,
            c.p50.as_micros_f64(),
            c.p99.as_micros_f64(),
            c.p999.as_micros_f64()
        );
    }
    println!(
        "overall 99.9% slowdown: {:.1}; goodput {:.2} Mrps",
        result.overall_slowdown_p999,
        result.achieved_rps / 1e6
    );
}
